"""Sliding-window decoding over syndrome streams.

Offline decoding needs the whole detector record; a real-time decoder cannot
wait for it.  The standard compromise from the streaming-decoder literature
is the overlapping sliding window: decode the most recent ``window_rounds``
rounds, *commit* only the corrections that fall in the oldest
``commit_rounds`` of the window, and defer everything younger — the
committed chain's loose ends are carried into the next window as *artifact*
defects XOR-ed onto the boundary round, so chains that straddle windows stay
consistent.

Concretely, a window over rounds ``[s, s+W)`` decodes ``W`` detector layers
plus one context layer (round ``s+W``'s detectors, or the transversal
readout for the last window) on a ``W``-round :class:`DetectorGraph`.  The
underlying decoder returns its correction as explicit graph edges
(:meth:`decode_shot_edges`), which the window classifies per layer:

* edges entirely below the commit boundary are finalised — their
  logical-flip parity is accumulated into the shot's running prediction,
* the time-like edge crossing the boundary is committed too (time edges
  never flip the logical) and leaves an artifact defect on the boundary
  round,
* everything above the boundary is discarded and re-decoded next window.

When ``window_rounds >= rounds`` the first window is also the last: every
edge commits and the result is bit-for-bit identical to offline decoding —
the proof-of-equivalence path the tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..pipeline.fused import FusedWindowSession

from ..codes.base import StabilizerCode
from ..decoders import DetectorGraph, SyndromeCache, make_decoder
from ..noise import NoiseParams
from .accounting import LatencyRecorder
from .stream import FinalChunk, ReplayStream, RoundChunk, SyndromeStream

__all__ = ["WindowedDecoder", "WindowSession", "entries_commit"]


@dataclass
class WindowedDecoder:
    """Wrap any ``repro.decoders`` decoder with overlapping sliding windows.

    Parameters
    ----------
    code / noise / rounds:
        The experiment geometry; ``rounds`` is the stream length the decoder
        will be fed (windows shorter than the stream slide across it).
    window_rounds:
        Rounds per window (``W``).  ``W >= rounds`` degenerates into one
        window and reproduces offline decoding bit-for-bit.
    commit_rounds:
        Rounds finalised per window step (``C``, the window advance).
        Defaults to ``max(1, W // 2)`` — 50% overlap, the usual
        latency/accuracy compromise.  ``C == W`` gives non-overlapping
        forward windows that communicate only through artifacts.
    method / max_exact_nodes / strategy:
        Passed through to :func:`repro.decoders.make_decoder`.
    cache / cache_size:
        The syndrome->correction cache shared by every window-size decoder
        this instance builds.  Sliding windows revisit the same sparse
        syndromes constantly, so the cache (plus the batched
        ``decode_edges_batch`` path used per window) is where the streaming
        throughput comes from.  Pass an existing
        :class:`~repro.decoders.SyndromeCache` to pool syndromes across
        decoders (the decode service shares one per service), or
        ``cache_size=0`` to disable reuse.
    fused:
        Route sessions through the bit-packed ring buffers of
        :class:`repro.pipeline.FusedWindowSession` instead of the dict
        buffer of :class:`WindowSession`.  Results are bit-identical (the
        fused session shares this module's commit logic); only the memory
        and allocation profile changes.
    """

    code: StabilizerCode
    noise: NoiseParams
    rounds: int
    window_rounds: int
    commit_rounds: int | None = None
    method: str = "matching"
    max_exact_nodes: int | None = None
    strategy: str | None = None
    cache: SyndromeCache | None = None
    cache_size: int | None = None
    fused: bool = False
    _decoders: dict = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.window_rounds <= 0:
            raise ValueError("window_rounds must be positive")
        if self.commit_rounds is None:
            self.commit_rounds = max(1, min(self.window_rounds, self.rounds) // 2)
        if not 1 <= self.commit_rounds <= self.window_rounds:
            raise ValueError(
                f"commit_rounds must be in [1, window_rounds]; got "
                f"{self.commit_rounds} for window {self.window_rounds}"
            )
        if self.cache is not None and self.cache_size is not None:
            raise ValueError("pass either cache or cache_size, not both")
        if self.cache is None:
            self.cache = SyndromeCache(self.cache_size)

    @property
    def effective_window(self) -> int:
        """The window actually used: never longer than the stream itself."""
        return min(self.window_rounds, self.rounds)

    @property
    def covers_stream(self) -> bool:
        """True when one window spans the whole stream (offline-equivalent)."""
        return self.window_rounds >= self.rounds

    def decoder_for(self, window: int):
        """The (graph, decoder) pair for a ``window``-round sub-problem, cached."""
        if window not in self._decoders:
            graph = DetectorGraph(
                code=self.code, rounds=window, noise=self.noise, hyperedges="decompose"
            )
            self._decoders[window] = (
                graph,
                make_decoder(
                    graph,
                    self.method,
                    max_exact_nodes=self.max_exact_nodes,
                    strategy=self.strategy,
                    cache=self.cache,
                ),
            )
        return self._decoders[window]

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def session(
        self, shots: int, recorder: LatencyRecorder | None = None
    ) -> "WindowSession | FusedWindowSession":
        """Start an incremental decode session for a batch of ``shots`` shots."""
        if self.fused:
            # Imported lazily: repro.pipeline builds on this module.
            from ..pipeline.fused import FusedWindowSession

            return FusedWindowSession(windowed=self, shots=shots, recorder=recorder)
        return WindowSession(windowed=self, shots=shots, recorder=recorder)

    def decode_stream(
        self, stream: SyndromeStream, recorder: LatencyRecorder | None = None
    ) -> np.ndarray:
        """Consume a whole stream; returns the (shots,) logical-flip predictions."""
        session = self.session(stream.shots, recorder)
        for chunk in stream.chunks():
            session.feed(chunk)
            while session.ready():
                session.step()
        return session.finish(stream.final())

    def decode_batch(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> np.ndarray:
        """Offline-shaped entry point: replay recorded arrays through windows."""
        return self.decode_stream(ReplayStream(detector_history, final_detectors))

    def decode_stats(self) -> dict:
        """Cache and dedup diagnostics aggregated over the window decoders.

        Same shape as :meth:`repro.decoders.DecoderBase.decode_stats`, so
        :class:`~repro.experiments.memory.MemoryExperiment` reads either
        provider uniformly.  Note the cache may be shared (the decode
        service pools one across streams), in which case ``cache_hit_rate``
        reports the pool, not just this instance.
        """
        assert self.cache is not None  # __post_init__ guarantees it
        shots = sum(d.batch_shots for _, d in self._decoders.values())
        unique = sum(d.batch_unique for _, d in self._decoders.values())
        return {
            "cache_hit_rate": self.cache.stats()["hit_rate"],
            "dedup_ratio": 1.0 - unique / shots if shots else 0.0,
        }


@dataclass
class WindowSession:
    """Incremental decoding state of one stream (one batch of shots).

    ``feed`` buffers round chunks, ``step`` decodes the next ready window and
    commits its oldest ``commit_rounds`` rounds, ``finish`` decodes the tail
    window against the final readout and returns the per-shot predictions.
    The buffer only ever holds ``window_rounds + 1`` rounds, which is the
    memory bound that makes streaming worthwhile.
    """

    windowed: WindowedDecoder
    shots: int
    recorder: LatencyRecorder | None = None
    start: int = field(init=False, default=0)
    windows_decoded: int = field(init=False, default=0)
    _buffer: dict = field(init=False, default_factory=dict, repr=False)
    _parity: np.ndarray = field(init=False, repr=False)
    _next_round: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._parity = np.zeros(self.shots, dtype=bool)

    # ------------------------------------------------------------------ #
    # Streaming interface
    # ------------------------------------------------------------------ #
    def feed(self, chunk: RoundChunk) -> None:
        """Buffer one round chunk (must arrive in round order)."""
        if chunk.round_index != self._next_round:
            raise ValueError(
                f"chunks must arrive in order; expected round {self._next_round}, "
                f"got {chunk.round_index}"
            )
        detectors = np.array(chunk.detectors, dtype=bool)
        if detectors.shape[0] != self.shots:
            raise ValueError("chunk shot dimension does not match the session")
        # A mutable copy: later windows XOR boundary artifacts into it.
        self._buffer[chunk.round_index] = detectors
        self._next_round += 1

    def ready(self) -> bool:
        """Whether an intermediate window can be decoded now."""
        window = self.windowed.effective_window
        end = self.start + window
        return end < self.windowed.rounds and end in self._buffer

    @property
    def rounds_fed(self) -> int:
        """Rounds buffered so far (the next expected chunk index)."""
        return self._next_round

    def window_inputs(self) -> tuple[np.ndarray, np.ndarray]:
        """The next ready window's ``(history, context)`` decode inputs.

        ``history`` is ``(shots, window, num_z)`` and ``context`` the one
        round past the window.  Together with :meth:`commit_window` this is
        the seam the decode service's cross-stream coalescer uses: it
        concatenates several sessions' inputs, decodes them in one batched
        call, and hands each session its slice of the results — which is
        bit-identical to each session decoding alone, because every unique
        syndrome decodes independently (see ``repro.serve``).
        """
        if not self.ready():
            raise RuntimeError("no window is ready; feed more chunks first")
        window = self.windowed.effective_window
        start = self.start
        history = np.stack(
            [self._buffer[r] for r in range(start, start + window)], axis=1
        )
        return history, self._buffer[start + window]

    def commit_window(
        self,
        entries: list[tuple[tuple[int, int], ...]],
        inverse: np.ndarray,
        started: float | None = None,
    ) -> None:
        """Commit one decoded window from per-unique-syndrome ``entries``.

        ``entries[inverse[s]]`` is shot ``s``'s correction, exactly the
        representation :meth:`~repro.decoders.base.DecoderBase.
        decode_edges_unique` returns (``inverse`` may be a slice of a larger
        coalesced batch).  ``started`` is the ``perf_counter`` tick the
        window's decode began at; the recorder logs the elapsed time through
        the end of this commit against the committed rounds.
        """
        window = self.windowed.effective_window
        commit = self.windowed.commit_rounds
        assert commit is not None  # __post_init__ resolves it
        start = self.start
        graph, _ = self.windowed.decoder_for(window)
        flips, masks = entries_commit(entries, graph, commit)
        self._parity ^= flips[inverse]
        # Boundary artifacts become extra defects on the first uncommitted
        # round, so cross-window chains re-terminate correctly next window.
        self._buffer[start + commit] ^= masks[inverse]
        for done in range(start, start + commit):
            del self._buffer[done]
        self.start += commit
        self.windows_decoded += 1
        if self.recorder is not None:
            elapsed = 0.0 if started is None else time.perf_counter() - started
            self.recorder.record(commit, elapsed)

    def step(self) -> None:
        """Decode the next intermediate window and commit its oldest rounds."""
        started = time.perf_counter()
        history, context = self.window_inputs()
        _, decoder = self.windowed.decoder_for(self.windowed.effective_window)
        # Batched, deduplicated decode: identical window syndromes (common at
        # low p) are decoded once and served from the shared syndrome cache.
        entries, inverse = decoder.decode_edges_unique(history, context)
        self.commit_window(entries, inverse, started)

    def finish(self, final: FinalChunk) -> np.ndarray:
        """Decode the tail window against the final readout; return predictions."""
        if self._next_round != self.windowed.rounds:
            raise RuntimeError(
                f"stream incomplete: fed {self._next_round} of "
                f"{self.windowed.rounds} rounds"
            )
        while self.ready():  # flush any windows the caller did not step
            self.step()
        tail = self.windowed.rounds - self.start
        started = time.perf_counter()
        history = np.stack(
            [self._buffer[r] for r in range(self.start, self.start + tail)], axis=1
        )
        final_detectors = np.asarray(final.final_detectors, dtype=bool)
        graph, decoder = self.windowed.decoder_for(tail)
        # Commit boundary beyond the last layer: every edge is finalised.
        commit_all = graph.num_layers
        for shot, edges in enumerate(
            decoder.decode_edges_batch(history, final_detectors)
        ):
            flip, artifact_stabs = _commit_edges(edges, graph, commit_all)
            assert not artifact_stabs
            self._parity[shot] ^= flip
        self._buffer.clear()
        self.windows_decoded += 1
        if self.recorder is not None:
            self.recorder.record(tail, time.perf_counter() - started)
        return self._parity.copy()


def entries_commit(
    entries: list[tuple[tuple[int, int], ...]],
    graph: DetectorGraph,
    commit_layer: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorisable commit of per-unique-syndrome correction entries.

    Returns ``(flips, masks)``: one committed logical-parity bit and one
    ``(num_z,)`` boundary-artifact mask per entry.  Scattering both through
    the dedup ``inverse`` map reproduces the per-shot commit loop exactly —
    the shared kernel of :class:`WindowSession`,
    :class:`repro.pipeline.FusedWindowSession` and the decode service's
    cross-stream coalescer.
    """
    flips = np.zeros(len(entries), dtype=bool)
    masks = np.zeros((len(entries), graph.num_z_stabs), dtype=bool)
    for index, edges in enumerate(entries):
        flip, artifact_stabs = _commit_edges(edges, graph, commit_layer)
        flips[index] = flip
        for z_local in artifact_stabs:
            masks[index, z_local] ^= True
    return flips, masks


def _commit_edges(
    edges: tuple[tuple[int, int], ...], graph: DetectorGraph, commit_layer: int
) -> tuple[bool, list[int]]:
    """Split a correction into (committed logical parity, boundary artifacts).

    Edges wholly below ``commit_layer`` commit; the time-like edge from layer
    ``commit_layer - 1`` to ``commit_layer`` commits and deposits an artifact
    defect at its upper endpoint; everything else is deferred.  Space and
    boundary edges live inside a single layer, so only time edges can cross.
    """
    num_z = graph.num_z_stabs
    boundary_node = graph.boundary_node
    parity = False
    artifacts: list[int] = []
    for node_a, node_b in edges:
        layer_a = node_a // num_z if node_a != boundary_node else None
        layer_b = node_b // num_z if node_b != boundary_node else None
        if layer_a is None:
            layer_a = layer_b
        if layer_b is None:
            layer_b = layer_a
        low, high = min(layer_a, layer_b), max(layer_a, layer_b)
        if high < commit_layer:
            edge = graph.edge_between(node_a, node_b)
            if edge is not None and edge.flips_logical:
                parity = not parity
        elif low == commit_layer - 1 and high == commit_layer:
            upper = node_a if node_a // num_z == commit_layer else node_b
            artifacts.append(upper % num_z)
        # low >= commit_layer: deferred, the next window re-decodes it.
    return parity, artifacts
