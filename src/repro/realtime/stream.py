"""Syndrome streams: per-round detector chunks for a batch of shots.

The offline harness hands the decoder one big ``(shots, rounds, detectors)``
array after the run ends.  A real control system never sees that array — it
sees one round of syndrome bits at a time and must react before the next
round lands.  A :class:`SyndromeStream` models exactly that interface: an
iterator of :class:`RoundChunk` objects (one per QEC round, batched over
shots) followed by a single :class:`FinalChunk` carrying the transversal
readout.  Two sources are provided:

* :class:`SimulatorStream` drives :meth:`LeakageSimulator.run_incremental`,
  producing chunks as the simulation advances — the closed-loop policy runs
  inside the simulator, the decoder runs outside, round by round,
* :class:`ReplayStream` replays a recorded :class:`RunResult` (or raw
  detector arrays), which is how archived experiments are re-decoded and how
  the offline equivalence tests drive the windowed decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.lrc import LrcGadget, default_lrc
from ..codes.base import StabilizerCode
from ..core.speculator import LeakagePolicy
from ..noise import NoiseParams
from ..sim import LeakageSimulator, RunResult, SimulatorOptions

__all__ = ["RoundChunk", "FinalChunk", "SyndromeStream", "SimulatorStream", "ReplayStream"]


@dataclass(frozen=True)
class RoundChunk:
    """One round of Z-detector flips for every shot of a stream."""

    round_index: int
    detectors: np.ndarray  # (shots, num_z_stabs) bool


@dataclass(frozen=True)
class FinalChunk:
    """The end-of-stream transversal readout.

    ``observable_flips`` is ``None`` when the stream source does not know the
    true logical observable (e.g. replaying bare detector arrays); decoding
    still works, only the failure count is unavailable.
    """

    final_detectors: np.ndarray  # (shots, num_z_stabs) bool
    observable_flips: np.ndarray | None  # (shots,) bool


class SyndromeStream:
    """Iterator protocol of a per-round syndrome source.

    Subclasses expose ``shots``, ``rounds`` and ``num_z_stabs`` up front,
    yield exactly ``rounds`` :class:`RoundChunk` objects in order from
    :meth:`chunks`, and make :meth:`final` available once the chunk iterator
    is exhausted.
    """

    shots: int
    rounds: int
    num_z_stabs: int

    def chunks(self):
        """Iterate the per-round detector chunks, in round order."""
        raise NotImplementedError

    def final(self) -> FinalChunk:
        """The final-readout chunk; only valid after :meth:`chunks` is exhausted."""
        raise NotImplementedError


@dataclass
class ReplayStream(SyndromeStream):
    """Replay recorded detector arrays as a stream.

    ``detector_history`` has shape ``(shots, rounds, num_z_stabs)``,
    ``final_detectors`` shape ``(shots, num_z_stabs)``.  ``code`` and
    ``noise`` are optional provenance; :class:`repro.realtime.DecodeService`
    needs them to build a decoder for the replayed record.
    """

    detector_history: np.ndarray
    final_detectors: np.ndarray
    observable_flips: np.ndarray | None = None
    code: StabilizerCode | None = None
    noise: NoiseParams | None = None

    def __post_init__(self) -> None:
        history = np.asarray(self.detector_history, dtype=bool)
        if history.ndim != 3:
            raise ValueError("detector_history must be (shots, rounds, num_z_stabs)")
        self.detector_history = history
        self.final_detectors = np.asarray(self.final_detectors, dtype=bool)
        if self.final_detectors.shape != (history.shape[0], history.shape[2]):
            raise ValueError("final_detectors must be (shots, num_z_stabs)")
        self.shots, self.rounds, self.num_z_stabs = history.shape

    @classmethod
    def from_run_result(cls, result: RunResult) -> "ReplayStream":
        """Adapt a recorded :class:`RunResult` (needs ``record_detectors=True``)."""
        if result.detector_history is None or result.final_detectors is None:
            raise ValueError(
                "RunResult has no detector record; run the simulator with "
                "record_detectors=True to replay it"
            )
        return cls(
            detector_history=result.detector_history,
            final_detectors=result.final_detectors,
            observable_flips=result.observable_flips,
        )

    def chunks(self):
        for round_index in range(self.rounds):
            yield RoundChunk(round_index, self.detector_history[:, round_index, :])

    def final(self) -> FinalChunk:
        return FinalChunk(self.final_detectors, self.observable_flips)


@dataclass
class SimulatorStream(SyndromeStream):
    """Live per-round chunks from a :class:`LeakageSimulator` run.

    The simulator's closed loop (speculation, LRC scheduling) runs inside as
    usual; only the detector record is streamed out instead of being
    accumulated, so memory stays bounded by the decoder's window — the whole
    point of online operation.  ``result`` holds the finished
    :class:`RunResult` (without detector history) once the stream is
    exhausted.
    """

    code: StabilizerCode
    noise: NoiseParams
    policy: LeakagePolicy
    shots: int
    rounds: int
    gadget: LrcGadget = field(default_factory=default_lrc)
    leakage_sampling: bool = False
    seed: int = 0
    result: RunResult | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self._simulator = LeakageSimulator(
            code=self.code,
            noise=self.noise,
            policy=self.policy,
            gadget=self.gadget,
            options=SimulatorOptions(
                leakage_sampling=self.leakage_sampling, record_detectors=False
            ),
            seed=self.seed,
        )
        self.num_z_stabs = len(
            [s for s in self.code.stabilizers if s.basis == "Z"]
        )

    def chunks(self):
        generator = self._simulator.run_incremental(self.shots, self.rounds)
        while True:
            try:
                round_index, detectors = next(generator)
            except StopIteration as stop:
                self.result = stop.value
                return
            yield RoundChunk(round_index, detectors)

    def final(self) -> FinalChunk:
        if self.result is None:
            raise RuntimeError("stream not exhausted yet; drain chunks() first")
        return FinalChunk(self.result.final_detectors, self.result.observable_flips)
