"""Command-line entry point: decode concurrent syndrome streams online.

Examples
--------
Four d=3 GLADIATOR+M streams through 8-round windows on 4 workers::

    PYTHONPATH=src python -m repro.realtime --streams 4 --distance 3 \
        --rounds 24 --window 8 --workers 4

Prints one row per stream (throughput, p50/p99 per-round decode latency,
realtime factor vs. the hardware round cadence) and writes the rows as JSON
records under ``results/realtime_service.json``.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..api.registry import CODES, DECODERS, POLICIES
from ..core import make_policy
from ..experiments.runner import make_code
from ..noise import paper_noise
from .service import DecodeService
from .stream import SimulatorStream

__all__ = ["main", "run"]


def _build_parser() -> argparse.ArgumentParser:
    # All component listings in the help text are derived from the live
    # registries so they can never drift from what the factories accept.
    parser = argparse.ArgumentParser(
        prog="python -m repro.realtime",
        description="Decode concurrent syndrome streams with sliding windows.",
    )
    parser.add_argument(
        "--family",
        default="surface",
        help=f"code family, one of: {', '.join(sorted(CODES.names()))} (default: surface)",
    )
    parser.add_argument("--distance", type=int, default=3, help="code distance (default: 3)")
    parser.add_argument(
        "--policy",
        default="gladiator+m",
        help=f"one of: {', '.join(sorted(POLICIES.names()))}",
    )
    parser.add_argument("--streams", type=int, default=4, help="concurrent streams (default: 4)")
    parser.add_argument("--shots", type=int, default=50, help="shots per stream (default: 50)")
    parser.add_argument("--rounds", type=int, default=24, help="QEC rounds per shot (default: 24)")
    parser.add_argument("--window", type=int, default=8, help="window size in rounds (default: 8)")
    parser.add_argument(
        "--commit", type=int, default=None, help="rounds committed per window (default: window/2)"
    )
    parser.add_argument(
        "--decoder",
        default="matching",
        help=f"decoder method, one of: {', '.join(sorted(DECODERS.names()))}",
    )
    parser.add_argument(
        "--max-exact-nodes", type=int, default=None, help="matching exact->greedy threshold"
    )
    parser.add_argument(
        "--strategy",
        choices=("auto", "exact", "greedy"),
        default=None,
        help="pin the matching backend (default: auto threshold)",
    )
    parser.add_argument("--p", type=float, default=1e-3, help="physical error rate (default: 1e-3)")
    parser.add_argument(
        "--leakage-ratio", type=float, default=0.1, help="p_leak / p (default: 0.1)"
    )
    parser.add_argument("--workers", type=int, default=4, help="decode worker threads (default: 4)")
    parser.add_argument(
        "--queue-depth", type=int, default=None, help="pending-window queue bound"
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default: 0)")
    parser.add_argument(
        "--out", default=None, help="output JSON path (default: results/realtime_service.json)"
    )
    parser.add_argument(
        "--results-dir", default=None, help="directory for the default output path"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    from ..api._deprecation import warn_once

    warn_once(
        "python -m repro.realtime",
        "`python -m repro.realtime` is deprecated; use `python -m repro realtime` "
        "(same flags, plus --config/--set support)",
    )
    return run(argv)


def run(argv: list[str] | None = None) -> int:
    """CLI body, shared with the `python -m repro realtime` subcommand."""
    args = _build_parser().parse_args(argv)
    if args.streams <= 0 or args.shots <= 0 or args.rounds <= 0:
        print("error: streams, shots and rounds must be positive", file=sys.stderr)
        return 2

    from ..io import ResultRecord, format_table, results_dir, save_records

    try:
        code = make_code(args.family, args.distance)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    noise = paper_noise(p=args.p, leakage_ratio=args.leakage_ratio)
    streams = [
        SimulatorStream(
            code=code,
            noise=noise,
            policy=make_policy(args.policy),
            shots=args.shots,
            rounds=args.rounds,
            seed=args.seed + 101 * index,
        )
        for index in range(args.streams)
    ]
    try:
        service = DecodeService(
            window_rounds=args.window,
            commit_rounds=args.commit,
            method=args.decoder,
            max_exact_nodes=args.max_exact_nodes,
            strategy=args.strategy,
            workers=args.workers,
            queue_depth=args.queue_depth,
        )
        started = time.perf_counter()
        reports = service.run(streams)
    except ValueError as exc:  # bad decoder/window/queue configuration
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    rows = [report.summary() for report in reports]
    print(format_table(rows))
    total_rounds = sum(report.rounds for report in reports)
    print(
        f"{len(reports)} streams ({service.windows_decoded} windows, "
        f"{total_rounds} stream-rounds) in {elapsed:.2f}s "
        f"({len(reports) / elapsed:.2f} streams/s, {service.workers} workers, "
        f"queue depth {service.queue_depth})"
    )

    out = args.out
    if out is None:
        out = results_dir(args.results_dir) / "realtime_service.json"
    records = [
        ResultRecord(
            experiment="realtime_service",
            parameters={
                "family": args.family,
                "distance": args.distance,
                "policy": args.policy,
                "window": args.window,
                "commit": args.commit,
                "decoder": args.decoder,
                "strategy": args.strategy,
                "workers": args.workers,
                "seed": args.seed,
            },
            metrics=row,
        )
        for row in rows
    ]
    path = save_records(records, out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
