"""Conflict-free CNOT scheduling for syndrome extraction.

During one syndrome-extraction round every stabilizer's ancilla must interact
with each data qubit in its support exactly once, and within one entangling
layer a physical qubit can participate in at most one gate.  Assigning a time
slot to every (stabilizer, data qubit) edge of the Tanner graph is therefore
an edge-colouring problem; the greedy colouring below uses at most
``deg(stabilizer) + deg(data) - 1`` layers, which is adequate for every code
family in this library (the surface code supplies its own hand-crafted
hook-error-avoiding schedule instead).
"""

from __future__ import annotations

__all__ = ["assign_conflict_free_slots"]


def assign_conflict_free_slots(
    supports: list[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """Assign a CNOT time slot to every (stabilizer, data qubit) pair.

    ``supports[i]`` is the data-qubit support of stabilizer ``i``; the return
    value has the same shape and gives the time slot of each entry.  No data
    qubit and no stabilizer is assigned the same slot twice.
    """
    data_busy: dict[int, set[int]] = {}
    slot_lists: list[tuple[int, ...]] = []
    for support in supports:
        stab_busy: set[int] = set()
        slots: list[int] = []
        for qubit in support:
            qubit_busy = data_busy.setdefault(qubit, set())
            slot = 0
            while slot in stab_busy or slot in qubit_busy:
                slot += 1
            slots.append(slot)
            stab_busy.add(slot)
            qubit_busy.add(slot)
        slot_lists.append(tuple(slots))
    return slot_lists
