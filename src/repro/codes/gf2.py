"""Linear algebra over GF(2).

Small, dependency-light helpers used by the CSS code constructions
(:mod:`repro.codes.hgp`, :mod:`repro.codes.bpc`) to compute ranks, null
spaces, and logical operators.  All matrices are ``numpy`` integer arrays
whose entries are interpreted modulo 2.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gf2_row_reduce",
    "gf2_rank",
    "gf2_nullspace",
    "gf2_rowspace",
    "gf2_solve",
    "in_rowspace",
    "css_logical_operators",
]


def _as_gf2(matrix: np.ndarray) -> np.ndarray:
    array = np.asarray(matrix, dtype=np.int64) % 2
    if array.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    return array.astype(np.uint8)


def gf2_row_reduce(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Return the row-reduced echelon form of ``matrix`` and its pivot columns."""
    reduced = _as_gf2(matrix).copy()
    rows, cols = reduced.shape
    pivot_cols: list[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        candidates = np.nonzero(reduced[pivot_row:, col])[0]
        if candidates.size == 0:
            continue
        swap = pivot_row + candidates[0]
        if swap != pivot_row:
            reduced[[pivot_row, swap]] = reduced[[swap, pivot_row]]
        eliminate = np.nonzero(reduced[:, col])[0]
        for row in eliminate:
            if row != pivot_row:
                reduced[row, :] ^= reduced[pivot_row, :]
        pivot_cols.append(col)
        pivot_row += 1
    return reduced, pivot_cols


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over GF(2)."""
    _, pivots = gf2_row_reduce(matrix)
    return len(pivots)


def gf2_rowspace(matrix: np.ndarray) -> np.ndarray:
    """A basis (as rows) for the row space of ``matrix`` over GF(2)."""
    reduced, pivots = gf2_row_reduce(matrix)
    return reduced[: len(pivots)].copy()


def gf2_nullspace(matrix: np.ndarray) -> np.ndarray:
    """A basis (as rows) for the null space ``{x : matrix @ x = 0 (mod 2)}``."""
    reduced, pivots = gf2_row_reduce(matrix)
    rows, cols = reduced.shape
    free_cols = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_cols), cols), dtype=np.uint8)
    for basis_index, free in enumerate(free_cols):
        basis[basis_index, free] = 1
        for pivot_index, pivot_col in enumerate(pivots):
            if reduced[pivot_index, free]:
                basis[basis_index, pivot_col] = 1
    return basis


def in_rowspace(vector: np.ndarray, matrix: np.ndarray) -> bool:
    """Whether ``vector`` lies in the GF(2) row space of ``matrix``."""
    vector = np.asarray(vector, dtype=np.uint8) % 2
    base_rank = gf2_rank(matrix)
    stacked = np.vstack([_as_gf2(matrix), vector[np.newaxis, :]])
    return gf2_rank(stacked) == base_rank


def gf2_solve(matrix: np.ndarray, target: np.ndarray) -> np.ndarray | None:
    """Solve ``matrix @ x = target`` over GF(2); return ``None`` if inconsistent."""
    matrix = _as_gf2(matrix)
    target = np.asarray(target, dtype=np.uint8) % 2
    rows, cols = matrix.shape
    augmented = np.hstack([matrix, target.reshape(rows, 1)])
    reduced, pivots = gf2_row_reduce(augmented)
    if cols in pivots:
        return None
    solution = np.zeros(cols, dtype=np.uint8)
    for pivot_index, pivot_col in enumerate(pivots):
        solution[pivot_col] = reduced[pivot_index, cols]
    return solution


def css_logical_operators(
    h_x: np.ndarray, h_z: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Logical X and Z operators for a CSS code.

    Given parity-check matrices ``h_x`` (X stabilizers) and ``h_z`` (Z
    stabilizers) with ``h_x @ h_z.T = 0`` over GF(2), return matrices whose
    rows are representatives of the logical X and logical Z operators, paired
    so that ``logical_x[i]`` anticommutes with ``logical_z[i]`` and commutes
    with every other returned logical.
    """
    h_x = _as_gf2(h_x)
    h_z = _as_gf2(h_z)
    if h_x.shape[1] != h_z.shape[1]:
        raise ValueError("h_x and h_z must act on the same number of qubits")
    if np.any((h_x @ h_z.T) % 2):
        raise ValueError("h_x and h_z do not commute; not a CSS code")

    # Candidate logical X operators: kernel of h_z, modulo rowspace of h_x.
    x_candidates = _quotient_basis(gf2_nullspace(h_z), h_x)
    z_candidates = _quotient_basis(gf2_nullspace(h_x), h_z)
    if x_candidates.shape[0] != z_candidates.shape[0]:
        raise RuntimeError("mismatched logical dimension; inconsistent CSS inputs")
    k = x_candidates.shape[0]
    if k == 0:
        return x_candidates, z_candidates

    # Pair them: find an invertible pairing via the anticommutation matrix.
    pairing = (x_candidates @ z_candidates.T) % 2
    logical_x = np.zeros_like(x_candidates)
    logical_z = np.zeros_like(z_candidates)
    x_pool = x_candidates.copy()
    z_pool = z_candidates.copy()
    for index in range(k):
        pairing = (x_pool @ z_pool.T) % 2
        found = np.argwhere(pairing == 1)
        if found.size == 0:
            raise RuntimeError("failed to pair logical operators")
        row, col = found[0]
        chosen_x = x_pool[row].copy()
        chosen_z = z_pool[col].copy()
        logical_x[index] = chosen_x
        logical_z[index] = chosen_z
        # Remove the chosen pair and fix up the rest so they commute with it.
        x_pool = np.delete(x_pool, row, axis=0)
        z_pool = np.delete(z_pool, col, axis=0)
        for other in range(x_pool.shape[0]):
            if (x_pool[other] @ chosen_z) % 2:
                x_pool[other] = (x_pool[other] + chosen_x) % 2
        for other in range(z_pool.shape[0]):
            if (z_pool[other] @ chosen_x) % 2:
                z_pool[other] = (z_pool[other] + chosen_z) % 2
    return logical_x, logical_z


def _quotient_basis(kernel_basis: np.ndarray, stabilizer_matrix: np.ndarray) -> np.ndarray:
    """Basis for ``kernel_basis`` rows modulo the row space of ``stabilizer_matrix``."""
    stab_space = gf2_rowspace(stabilizer_matrix)
    representatives: list[np.ndarray] = []
    current = stab_space.copy() if stab_space.size else np.zeros(
        (0, kernel_basis.shape[1]), dtype=np.uint8
    )
    current_rank = gf2_rank(current) if current.size else 0
    for row in kernel_basis:
        stacked = np.vstack([current, row[np.newaxis, :]]) if current.size else row[np.newaxis, :]
        new_rank = gf2_rank(stacked)
        if new_rank > current_rank:
            representatives.append(row.copy())
            current = stacked
            current_rank = new_rank
    if representatives:
        return np.vstack(representatives).astype(np.uint8)
    return np.zeros((0, kernel_basis.shape[1]), dtype=np.uint8)
