"""Toric code construction (periodic boundaries).

The distance-``L`` toric code places data qubits on the ``2 * L**2`` edges
of an ``L x L`` square lattice wrapped onto a torus.  Every vertex carries a
weight-4 X stabilizer over its four incident edges and every plaquette a
weight-4 Z stabilizer over its four surrounding edges; with periodic
boundaries there are no truncated faces, so *every* data qubit touches
exactly two X and two Z stabilizers and the speculation patterns are 4-bit
strings everywhere.  One X and one Z stabilizer are redundant (the products
over all vertices / all plaquettes are identity), which leaves two logical
qubits encoded in the non-contractible loops of the torus.

The wraparound geometry is the interesting stress case for the decoding
stack: the detector graph has no spatial boundary at all, so corrections
must always pair syndromes with each other rather than escaping to an open
edge.
"""

from __future__ import annotations

import numpy as np

from ..api.registry import register_code
from .base import Stabilizer, StabilizerCode
from .scheduling import assign_conflict_free_slots

__all__ = ["toric_code"]


@register_code("toric", default_distance=4,
               description="Toric code on a periodic L x L lattice (2 logical qubits)")
def toric_code(distance: int) -> StabilizerCode:
    """Build the toric code on an ``distance x distance`` periodic lattice."""
    length = distance
    if length < 2:
        raise ValueError("toric code distance must be an integer >= 2")

    num_data = 2 * length * length

    def horizontal(row: int, col: int) -> int:
        """Edge from vertex ``(row, col)`` to ``(row, col + 1)``."""
        return (row % length) * length + (col % length)

    def vertical(row: int, col: int) -> int:
        """Edge from vertex ``(row, col)`` to ``(row + 1, col)``."""
        return length * length + (row % length) * length + (col % length)

    supports: list[tuple[int, ...]] = []
    bases: list[str] = []
    coords: list[tuple[float, float]] = []
    for row in range(length):
        for col in range(length):
            # X stabilizer on the vertex (row, col): its four incident edges.
            supports.append(
                (
                    horizontal(row, col),
                    horizontal(row, col - 1),
                    vertical(row, col),
                    vertical(row - 1, col),
                )
            )
            bases.append("X")
            coords.append((float(row), float(col)))
            # Z stabilizer on the plaquette whose north-west corner is
            # (row, col): its four surrounding edges.
            supports.append(
                (
                    horizontal(row, col),
                    horizontal(row + 1, col),
                    vertical(row, col),
                    vertical(row, col + 1),
                )
            )
            bases.append("Z")
            coords.append((row + 0.5, col + 0.5))

    slot_assignments = assign_conflict_free_slots(supports)
    stabilizers = [
        Stabilizer(
            index=index,
            basis=basis,
            data_support=support,
            time_slots=tuple(slots),
            coords=coord,
        )
        for index, (support, basis, coord, slots) in enumerate(
            zip(supports, bases, coords, slot_assignments)
        )
    ]

    # Logical Z: a Z string on the horizontal edges of one row — a loop that
    # winds around the torus.  Logical X: an X string on the horizontal edges
    # of one column — the dual loop cutting it exactly once, so the pair
    # anticommutes on the single shared edge.
    logical_z = np.zeros(num_data, dtype=np.uint8)
    logical_z[[horizontal(0, col) for col in range(length)]] = 1
    logical_x = np.zeros(num_data, dtype=np.uint8)
    logical_x[[horizontal(row, 0) for row in range(length)]] = 1

    data_coords = [
        (float(row), col + 0.5) for row in range(length) for col in range(length)
    ] + [
        (row + 0.5, float(col)) for row in range(length) for col in range(length)
    ]
    code = StabilizerCode(
        name=f"toric_d{length}",
        distance=length,
        num_data=num_data,
        stabilizers=stabilizers,
        logical_x=logical_x,
        logical_z=logical_z,
        data_coords=data_coords,
        metadata={"family": "toric", "lattice": "periodic"},
    )
    if code.num_logical_qubits != 2:
        raise RuntimeError(
            f"toric code construction encoded {code.num_logical_qubits} logical "
            "qubits, expected 2"
        )
    return code
