"""Triangular 6.6.6 colour code construction.

The distance-``d`` triangular colour code encodes one logical qubit in
``(3 d**2 + 1) / 4`` data qubits (37 for ``d = 7``, as quoted in Section 5.1
of the paper).  Every hexagonal plaquette hosts both an X-type and a Z-type
stabilizer on the same support, so the parity-qubit count is ``2`` per
plaquette.

Construction: sites of a triangular lattice are arranged in rows
``r = 0 .. 3(d-1)/2`` with columns ``c = 0 .. r``.  Sites with
``(r + c) % 3 == 1`` are plaquette centres; all other sites are data qubits.
A plaquette acts on its (up to six) neighbouring lattice sites, which are all
data qubits because ``(r + c) mod 3`` is a proper 3-colouring of the
triangular lattice.  Interior plaquettes have weight 6 and boundary
plaquettes weight 4; for ``d = 3`` this reproduces the Steane code.

Interior data qubits belong to three plaquettes, edge qubits to two and the
corner qubits to one, which is exactly the 3/2/1-bit speculation-pattern
structure the paper highlights for colour codes.
"""

from __future__ import annotations

import numpy as np

from ..api.registry import register_code
from .base import SpeculationGroup, Stabilizer, StabilizerCode
from .scheduling import assign_conflict_free_slots

__all__ = ["color_code", "triangular_color_layout"]

_NEIGHBOR_OFFSETS = ((0, -1), (0, 1), (-1, -1), (-1, 0), (1, 0), (1, 1))


def triangular_color_layout(distance: int) -> tuple[list[tuple[int, int]], list[dict]]:
    """Return (data sites, plaquettes) of the triangular 6.6.6 colour code."""
    if distance < 3 or distance % 2 == 0:
        raise ValueError("colour code distance must be an odd integer >= 3")
    max_row = 3 * (distance - 1) // 2

    def in_lattice(row: int, col: int) -> bool:
        return 0 <= row <= max_row and 0 <= col <= row

    data_sites: list[tuple[int, int]] = []
    plaquette_sites: list[tuple[int, int]] = []
    for row in range(max_row + 1):
        for col in range(row + 1):
            if (row + col) % 3 == 1:
                plaquette_sites.append((row, col))
            else:
                data_sites.append((row, col))

    plaquettes: list[dict] = []
    for row, col in plaquette_sites:
        support = [
            (row + dr, col + dc)
            for dr, dc in _NEIGHBOR_OFFSETS
            if in_lattice(row + dr, col + dc)
        ]
        plaquettes.append(
            {
                "coords": (float(row), float(col)),
                "support": sorted(support),
                "color": (row - col) % 3,
            }
        )
    return data_sites, plaquettes


@register_code("color", default_distance=7,
               description="Triangular 6.6.6 colour code (odd distance)")
def color_code(distance: int) -> StabilizerCode:
    """Build the triangular 6.6.6 colour code of odd distance ``distance``."""
    data_sites, plaquettes = triangular_color_layout(distance)
    site_to_index = {site: index for index, site in enumerate(data_sites)}
    num_data = len(data_sites)
    expected_data = (3 * distance * distance + 1) // 4
    if num_data != expected_data:
        raise RuntimeError(
            f"colour code construction produced {num_data} data qubits, "
            f"expected {expected_data}"
        )

    supports = [
        tuple(site_to_index[s] for s in plaquette["support"]) for plaquette in plaquettes
    ]
    # One schedule entry per stabilizer: Z then X for each plaquette, so the
    # edge colouring keeps the two ancillas of a plaquette in disjoint layers.
    interleaved_supports = [s for support in supports for s in (support, support)]
    interleaved_slots = assign_conflict_free_slots(interleaved_supports)

    stabilizers: list[Stabilizer] = []
    plaquette_pairs: list[tuple[int, int]] = []  # (z_index, x_index) per plaquette
    for plaquette_index, plaquette in enumerate(plaquettes):
        support = supports[plaquette_index]
        z_index = len(stabilizers)
        stabilizers.append(
            Stabilizer(
                index=z_index,
                basis="Z",
                data_support=support,
                time_slots=interleaved_slots[2 * plaquette_index],
                coords=plaquette["coords"],
            )
        )
        x_index = len(stabilizers)
        stabilizers.append(
            Stabilizer(
                index=x_index,
                basis="X",
                data_support=support,
                time_slots=interleaved_slots[2 * plaquette_index + 1],
                coords=plaquette["coords"],
            )
        )
        plaquette_pairs.append((z_index, x_index))

    # Logical X and Z both run along the left edge of the triangle (column 0).
    boundary = [site_to_index[(row, 0)] for row, col in data_sites if col == 0]
    logical = np.zeros(num_data, dtype=np.uint8)
    logical[boundary] = 1

    # Speculation patterns: one bit per adjacent plaquette (the OR of the
    # plaquette's X and Z detector flips), matching the paper's 3-bit colour
    # code patterns for interior qubits.
    qubit_plaquettes: dict[int, list[int]] = {q: [] for q in range(num_data)}
    for plaquette_index, plaquette in enumerate(plaquettes):
        for site in plaquette["support"]:
            qubit_plaquettes[site_to_index[site]].append(plaquette_index)
    overrides = {}
    for qubit, adjacent in qubit_plaquettes.items():
        groups = []
        for slot, plaquette_index in enumerate(sorted(adjacent)):
            z_index, x_index = plaquette_pairs[plaquette_index]
            groups.append(
                SpeculationGroup(stabilizers=(z_index, x_index), time_slot=slot)
            )
        overrides[qubit] = groups

    code = StabilizerCode(
        name=f"color_d{distance}",
        distance=distance,
        num_data=num_data,
        stabilizers=stabilizers,
        logical_x=logical.copy(),
        logical_z=logical.copy(),
        data_coords=[(float(r), float(c)) for r, c in data_sites],
        speculation_overrides=overrides,
        metadata={"family": "color", "lattice": "6.6.6-triangular"},
    )
    return code
