"""Base classes describing CSS stabilizer codes for leakage-aware simulation.

A :class:`StabilizerCode` bundles everything the rest of the library needs to
know about a quantum error-correcting code:

* the data qubits and parity (ancilla) qubits,
* the stabilizer supports and the order in which each stabilizer's CNOTs are
  scheduled inside one syndrome-extraction round,
* the logical operators tracked by memory experiments,
* the data-qubit "speculation adjacency" used by leakage speculators
  (ERASER, GLADIATOR, ...) to turn raw syndrome flips into per-data-qubit
  bit patterns,
* a colouring of the data qubits used by the staggered open-loop LRC policy.

Concrete constructions live in :mod:`repro.codes.surface`,
:mod:`repro.codes.color`, :mod:`repro.codes.hgp` and :mod:`repro.codes.bpc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import networkx as nx
import numpy as np

from .gf2 import gf2_rank

__all__ = ["Stabilizer", "StabilizerCode", "SpeculationGroup"]


@dataclass(frozen=True)
class Stabilizer:
    """One stabilizer generator measured by a dedicated ancilla qubit.

    Attributes
    ----------
    index:
        Position of this stabilizer in the code's stabilizer list.  The
        ancilla qubit measuring it shares the same index.
    basis:
        ``"X"`` or ``"Z"``.  A Z-type stabilizer is a product of Pauli Z
        operators and detects X errors on its support (and vice versa).
    data_support:
        Data-qubit indices touched by this stabilizer, listed in the order in
        which the ancilla interacts with them during syndrome extraction.
    time_slots:
        Global CNOT time slot of each entry of ``data_support``.  When
        ``None`` the slots default to ``0, 1, 2, ...``.  Explicit slots let
        boundary stabilizers keep the layer assignment of the full schedule
        so that no data qubit is touched twice in the same layer.
    coords:
        Optional planar coordinates, used for plotting and for layout-aware
        policies; ``None`` for non-planar codes.
    """

    index: int
    basis: str
    data_support: tuple[int, ...]
    time_slots: tuple[int, ...] | None = None
    coords: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.basis not in ("X", "Z"):
            raise ValueError(f"stabilizer basis must be 'X' or 'Z', got {self.basis!r}")
        if len(set(self.data_support)) != len(self.data_support):
            raise ValueError("stabilizer support contains repeated data qubits")
        if self.time_slots is not None:
            if len(self.time_slots) != len(self.data_support):
                raise ValueError("time_slots must match data_support in length")
            if len(set(self.time_slots)) != len(self.time_slots):
                raise ValueError("a stabilizer cannot use the same time slot twice")

    @property
    def weight(self) -> int:
        """Number of data qubits in the stabilizer support."""
        return len(self.data_support)

    @property
    def slots(self) -> tuple[int, ...]:
        """CNOT time slot of each supported data qubit (defaults to 0, 1, ...)."""
        if self.time_slots is not None:
            return self.time_slots
        return tuple(range(len(self.data_support)))

    def time_slot(self, data_qubit: int) -> int:
        """CNOT time slot at which ``data_qubit`` interacts with this ancilla."""
        return self.slots[self.data_support.index(data_qubit)]


@dataclass(frozen=True)
class SpeculationGroup:
    """One bit of a data qubit's speculation pattern.

    The bit is the OR of the detector flips of the listed stabilizers.  For
    surface codes each group holds a single adjacent ancilla; for colour codes
    a group holds the X/Z ancilla pair of one adjacent plaquette, matching the
    paper's 3-bit colour-code patterns.
    """

    stabilizers: tuple[int, ...]
    time_slot: int


@dataclass
class StabilizerCode:
    """A CSS code plus the scheduling metadata needed for leakage simulation."""

    name: str
    distance: int
    num_data: int
    stabilizers: list[Stabilizer]
    logical_x: np.ndarray
    logical_z: np.ndarray
    data_coords: list[tuple[float, float] | None] = field(default_factory=list)
    speculation_overrides: dict[int, list[SpeculationGroup]] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.logical_x = np.asarray(self.logical_x, dtype=np.uint8) % 2
        self.logical_z = np.asarray(self.logical_z, dtype=np.uint8) % 2
        if not self.data_coords:
            self.data_coords = [None] * self.num_data
        self.validate()

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #
    @property
    def num_ancilla(self) -> int:
        """Number of parity (ancilla) qubits; one per stabilizer generator."""
        return len(self.stabilizers)

    @property
    def num_qubits(self) -> int:
        """Total physical qubit count (data plus ancilla)."""
        return self.num_data + self.num_ancilla

    @cached_property
    def x_stabilizers(self) -> list[Stabilizer]:
        """Stabilizers of X type (detect Z errors)."""
        return [s for s in self.stabilizers if s.basis == "X"]

    @cached_property
    def z_stabilizers(self) -> list[Stabilizer]:
        """Stabilizers of Z type (detect X errors)."""
        return [s for s in self.stabilizers if s.basis == "Z"]

    @cached_property
    def parity_check_x(self) -> np.ndarray:
        """Binary matrix of X stabilizer supports (rows) over data qubits (columns)."""
        return self._support_matrix(self.x_stabilizers)

    @cached_property
    def parity_check_z(self) -> np.ndarray:
        """Binary matrix of Z stabilizer supports (rows) over data qubits (columns)."""
        return self._support_matrix(self.z_stabilizers)

    def _support_matrix(self, stabs: list[Stabilizer]) -> np.ndarray:
        matrix = np.zeros((len(stabs), self.num_data), dtype=np.uint8)
        for row, stab in enumerate(stabs):
            matrix[row, list(stab.data_support)] = 1
        return matrix

    @cached_property
    def max_stabilizer_weight(self) -> int:
        """Largest stabilizer weight."""
        return max(s.weight for s in self.stabilizers)

    @cached_property
    def num_time_slots(self) -> int:
        """Number of entangling layers needed by one syndrome-extraction round."""
        return max(max(s.slots) for s in self.stabilizers) + 1

    # ------------------------------------------------------------------ #
    # Adjacency used by speculation and by the staggered policy
    # ------------------------------------------------------------------ #
    @cached_property
    def data_adjacency(self) -> list[list[tuple[int, int]]]:
        """For each data qubit, the adjacent stabilizers as ``(stab_index, time_slot)``.

        Entries are sorted by time slot (then stabilizer index), which fixes
        the bit order of speculation patterns.
        """
        adjacency: list[list[tuple[int, int]]] = [[] for _ in range(self.num_data)]
        for stab in self.stabilizers:
            for slot, data in zip(stab.slots, stab.data_support):
                adjacency[data].append((stab.index, slot))
        for entries in adjacency:
            entries.sort(key=lambda item: (item[1], item[0]))
        return adjacency

    @cached_property
    def speculation_groups(self) -> list[list[SpeculationGroup]]:
        """Per-data-qubit pattern groups consumed by leakage speculators.

        By default each adjacent ancilla contributes one bit, ordered by the
        time slot at which the data qubit interacts with it.  Codes may
        override individual qubits via ``speculation_overrides`` (the colour
        code groups its X/Z plaquette pair into one bit).
        """
        groups: list[list[SpeculationGroup]] = []
        for data in range(self.num_data):
            if data in self.speculation_overrides:
                groups.append(list(self.speculation_overrides[data]))
                continue
            groups.append(
                [
                    SpeculationGroup(stabilizers=(stab_index,), time_slot=slot)
                    for stab_index, slot in self.data_adjacency[data]
                ]
            )
        return groups

    def pattern_width(self, data_qubit: int) -> int:
        """Number of bits in ``data_qubit``'s speculation pattern."""
        return len(self.speculation_groups[data_qubit])

    @cached_property
    def pattern_widths(self) -> list[int]:
        """Pattern width of every data qubit."""
        return [self.pattern_width(q) for q in range(self.num_data)]

    @cached_property
    def interaction_graph(self) -> nx.Graph:
        """Graph on data qubits; edges join qubits that share a stabilizer."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_data))
        for stab in self.stabilizers:
            support = stab.data_support
            for i in range(len(support)):
                for j in range(i + 1, len(support)):
                    graph.add_edge(support[i], support[j])
        return graph

    @cached_property
    def data_coloring(self) -> list[int]:
        """A proper colouring of the data interaction graph.

        Used by the staggered Always-LRC policy: qubits of the same colour are
        never adjacent, so resetting one colour group per round avoids
        correlated LRC faults on neighbouring qubits.
        """
        coloring = nx.greedy_color(self.interaction_graph, strategy="largest_first")
        return [coloring[q] for q in range(self.num_data)]

    @property
    def num_color_groups(self) -> int:
        """Number of colour classes used by :attr:`data_coloring`."""
        return max(self.data_coloring) + 1 if self.num_data else 0

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check CSS commutation relations and logical-operator consistency."""
        for stab in self.stabilizers:
            for qubit in stab.data_support:
                if not 0 <= qubit < self.num_data:
                    raise ValueError(
                        f"stabilizer {stab.index} references data qubit {qubit} "
                        f"outside [0, {self.num_data})"
                    )
        h_x, h_z = self.parity_check_x, self.parity_check_z
        if h_x.size and h_z.size and np.any((h_x @ h_z.T) % 2):
            raise ValueError(f"{self.name}: X and Z stabilizers do not commute")
        if self.logical_x.shape != (self.num_data,):
            raise ValueError("logical_x must be a length-num_data binary vector")
        if self.logical_z.shape != (self.num_data,):
            raise ValueError("logical_z must be a length-num_data binary vector")
        if h_x.size and np.any((h_x @ self.logical_z) % 2):
            raise ValueError(f"{self.name}: logical Z anticommutes with an X stabilizer")
        if h_z.size and np.any((h_z @ self.logical_x) % 2):
            raise ValueError(f"{self.name}: logical X anticommutes with a Z stabilizer")
        if int(self.logical_x @ self.logical_z) % 2 != 1:
            raise ValueError(f"{self.name}: logical X and Z do not anticommute")

    @cached_property
    def num_logical_qubits(self) -> int:
        """Number of encoded logical qubits, ``n - rank(Hx) - rank(Hz)``."""
        rank_x = gf2_rank(self.parity_check_x) if self.parity_check_x.size else 0
        rank_z = gf2_rank(self.parity_check_z) if self.parity_check_z.size else 0
        return self.num_data - rank_x - rank_z

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def stabilizer_ancilla_coords(self) -> list[tuple[float, float] | None]:
        """Coordinates of the ancilla qubits, ordered by stabilizer index."""
        return [s.coords for s in self.stabilizers]

    def describe(self) -> str:
        """One-line human-readable summary of the code."""
        widths = sorted(set(self.pattern_widths))
        return (
            f"{self.name}: distance {self.distance}, {self.num_data} data + "
            f"{self.num_ancilla} ancilla qubits, k={self.num_logical_qubits}, "
            f"pattern widths {widths}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StabilizerCode {self.describe()}>"
