"""Rotated surface code construction.

The distance-``d`` rotated surface code uses ``d**2`` data qubits and
``d**2 - 1`` parity qubits (one per stabilizer), the layout assumed
throughout the paper (Section 2.2).  Data qubits sit on a ``d x d`` grid;
weight-4 stabilizers sit on the faces of the grid in a checkerboard pattern
and weight-2 stabilizers close the boundaries (X-type along the top/bottom
rows, Z-type along the left/right columns).

Each bulk data qubit touches four ancillas, which is why the paper's
speculation patterns for the surface code are 4-bit strings; boundary and
corner data qubits produce 3-bit and 2-bit patterns.
"""

from __future__ import annotations

import numpy as np

from ..api.registry import register_code
from .base import Stabilizer, StabilizerCode

__all__ = ["surface_code", "rotated_surface_layout"]


def rotated_surface_layout(distance: int) -> list[dict]:
    """Return the face layout of the rotated surface code.

    Each entry describes one stabilizer: its basis, planar coordinates and the
    data-qubit grid positions it touches, ordered by CNOT time slot.
    """
    if distance < 2:
        raise ValueError("surface code distance must be at least 2")
    faces: list[dict] = []
    for face_row in range(-1, distance):
        for face_col in range(-1, distance):
            corners = [
                (face_row, face_col),
                (face_row, face_col + 1),
                (face_row + 1, face_col),
                (face_row + 1, face_col + 1),
            ]
            support = [
                (row, col)
                for row, col in corners
                if 0 <= row < distance and 0 <= col < distance
            ]
            basis = "X" if (face_row + face_col) % 2 == 0 else "Z"
            if len(support) == 4:
                keep = True
            elif len(support) == 2:
                on_row_boundary = face_row in (-1, distance - 1)
                keep = (basis == "X") if on_row_boundary else (basis == "Z")
            else:
                keep = False
            if not keep:
                continue
            scheduled = _schedule_support(basis, corners, set(support))
            faces.append(
                {
                    "basis": basis,
                    "coords": (face_row + 0.5, face_col + 0.5),
                    "support": [site for site, _ in scheduled],
                    "slots": [slot for _, slot in scheduled],
                }
            )
    return faces


def _schedule_support(
    basis: str,
    corners: list[tuple[int, int]],
    present: set[tuple[int, int]],
) -> list[tuple[tuple[int, int], int]]:
    """Assign CNOT time slots to a face's data qubits.

    X stabilizers sweep their corners in a "Z" pattern (NW, NE, SW, SE) and Z
    stabilizers in an "N" pattern (NW, SW, NE, SE); using opposite sweep
    orders for the two bases is the standard schedule that avoids hook errors
    and never touches a data qubit twice in the same layer.  Boundary faces
    keep the slots of the corners they retain, so the global schedule stays
    conflict-free.
    """
    north_west, north_east, south_west, south_east = corners
    if basis == "X":
        full_order = [north_west, north_east, south_west, south_east]
    else:
        full_order = [north_west, south_west, north_east, south_east]
    return [
        (site, slot) for slot, site in enumerate(full_order) if site in present
    ]


@register_code("surface", default_distance=7,
               description="Rotated surface code (odd distance)")
def surface_code(distance: int) -> StabilizerCode:
    """Build the rotated surface code of odd distance ``distance``."""
    if distance < 3 or distance % 2 == 0:
        raise ValueError("surface code distance must be an odd integer >= 3")

    def data_index(row: int, col: int) -> int:
        return row * distance + col

    stabilizers: list[Stabilizer] = []
    for face in rotated_surface_layout(distance):
        stabilizers.append(
            Stabilizer(
                index=len(stabilizers),
                basis=face["basis"],
                data_support=tuple(data_index(r, c) for r, c in face["support"]),
                time_slots=tuple(face["slots"]),
                coords=face["coords"],
            )
        )

    num_data = distance * distance
    # Logical Z runs along the top row (crosses the Z boundaries); logical X
    # runs down the left column (crosses the X boundaries).
    logical_z = np.zeros(num_data, dtype=np.uint8)
    logical_z[[data_index(0, col) for col in range(distance)]] = 1
    logical_x = np.zeros(num_data, dtype=np.uint8)
    logical_x[[data_index(row, 0) for row in range(distance)]] = 1

    data_coords = [
        (float(row), float(col))
        for row in range(distance)
        for col in range(distance)
    ]
    code = StabilizerCode(
        name=f"surface_d{distance}",
        distance=distance,
        num_data=num_data,
        stabilizers=stabilizers,
        logical_x=logical_x,
        logical_z=logical_z,
        data_coords=data_coords,
        metadata={"family": "surface", "lattice": "rotated"},
    )
    expected = distance * distance - 1
    if code.num_ancilla != expected:
        raise RuntimeError(
            f"surface code construction produced {code.num_ancilla} stabilizers, "
            f"expected {expected}"
        )
    return code
