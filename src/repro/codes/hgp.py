"""Hypergraph product (HGP) codes.

The hypergraph product of two classical codes with parity-check matrices
``H1`` (r1 x n1) and ``H2`` (r2 x n2) is a CSS code on
``n1 * n2 + r1 * r2`` qubits with

* X stabilizers  ``Hx = [ H1 (x) I_n2 | I_r1 (x) H2^T ]``
* Z stabilizers  ``Hz = [ I_n1 (x) H2 | H1^T (x) I_r2 ]``

(``(x)`` is the Kronecker product).  HGP codes have irregular data-to-check
adjacency, which is exactly the regime in which the paper argues ERASER's
50%-flip heuristic stops working; GLADIATOR handles them through the same
graph model it uses for surface codes.
"""

from __future__ import annotations

import numpy as np

from ..api.registry import register_code
from .base import Stabilizer, StabilizerCode
from .classical import hamming_parity_check
from .gf2 import css_logical_operators
from .scheduling import assign_conflict_free_slots

__all__ = ["hypergraph_product_code", "hgp_code_from_checks"]


def hgp_code_from_checks(
    h1: np.ndarray,
    h2: np.ndarray,
    name: str = "hgp",
    distance: int | None = None,
) -> StabilizerCode:
    """Build the hypergraph product code of two classical parity-check matrices."""
    h1 = np.asarray(h1, dtype=np.uint8) % 2
    h2 = np.asarray(h2, dtype=np.uint8) % 2
    r1, n1 = h1.shape
    r2, n2 = h2.shape

    identity_n1 = np.eye(n1, dtype=np.uint8)
    identity_n2 = np.eye(n2, dtype=np.uint8)
    identity_r1 = np.eye(r1, dtype=np.uint8)
    identity_r2 = np.eye(r2, dtype=np.uint8)

    h_x = np.hstack([np.kron(h1, identity_n2), np.kron(identity_r1, h2.T)]) % 2
    h_z = np.hstack([np.kron(identity_n1, h2), np.kron(h1.T, identity_r2)]) % 2

    return css_code_from_matrices(
        h_x,
        h_z,
        name=name,
        distance=distance if distance is not None else _heuristic_distance(h1, h2),
        metadata={"family": "hgp", "n1": n1, "n2": n2, "r1": r1, "r2": r2},
    )


@register_code("hgp", accepts_distance=False,
               description="Hypergraph product of two Hamming [7,4,3] codes")
def hypergraph_product_code(distance: int | None = None) -> StabilizerCode:
    """Default HGP instance: the hypergraph product of two Hamming [7,4,3] codes.

    This yields a ``[[58, 16]]`` CSS code with mixed-weight stabilizers and
    data qubits that touch anywhere from two to eight checks, exercising the
    non-uniform pattern widths GLADIATOR must handle.
    """
    hamming = hamming_parity_check()
    return hgp_code_from_checks(
        hamming, hamming, name="hgp_hamming7", distance=distance or 3
    )


def css_code_from_matrices(
    h_x: np.ndarray,
    h_z: np.ndarray,
    name: str,
    distance: int,
    metadata: dict | None = None,
) -> StabilizerCode:
    """Wrap explicit CSS parity-check matrices into a :class:`StabilizerCode`.

    Stabilizer CNOT schedules simply follow increasing data-qubit index; the
    logical operators are computed with GF(2) linear algebra and the first
    logical X/Z pair is tracked by memory experiments.
    """
    h_x = np.asarray(h_x, dtype=np.uint8) % 2
    h_z = np.asarray(h_z, dtype=np.uint8) % 2
    if h_x.shape[1] != h_z.shape[1]:
        raise ValueError("h_x and h_z must have the same number of columns")
    num_data = h_x.shape[1]

    supports: list[tuple[int, ...]] = []
    bases: list[str] = []
    for row in range(h_z.shape[0]):
        support = tuple(int(q) for q in np.nonzero(h_z[row])[0])
        if support:
            supports.append(support)
            bases.append("Z")
    for row in range(h_x.shape[0]):
        support = tuple(int(q) for q in np.nonzero(h_x[row])[0])
        if support:
            supports.append(support)
            bases.append("X")
    slots = assign_conflict_free_slots(supports)
    stabilizers = [
        Stabilizer(
            index=index,
            basis=basis,
            data_support=support,
            time_slots=slot_assignment,
        )
        for index, (basis, support, slot_assignment) in enumerate(
            zip(bases, supports, slots)
        )
    ]

    logical_x_ops, logical_z_ops = css_logical_operators(h_x, h_z)
    if logical_x_ops.shape[0] == 0:
        raise ValueError(f"{name}: the given matrices encode zero logical qubits")

    return StabilizerCode(
        name=name,
        distance=distance,
        num_data=num_data,
        stabilizers=stabilizers,
        logical_x=logical_x_ops[0],
        logical_z=logical_z_ops[0],
        metadata={**(metadata or {}), "num_logical": int(logical_x_ops.shape[0])},
    )


def _heuristic_distance(h1: np.ndarray, h2: np.ndarray) -> int:
    """Crude lower-bound style distance label for reporting purposes only."""
    return max(2, min(h1.shape[1] - np.linalg.matrix_rank(h1), 3))
