"""Quantum error-correcting code constructions used by the reproduction."""

from .base import SpeculationGroup, Stabilizer, StabilizerCode
from .bpc import bpc_code, two_block_cyclic_code
from .color import color_code
from .hgp import hgp_code_from_checks, hypergraph_product_code
from .surface import surface_code
from .toric import toric_code

__all__ = [
    "SpeculationGroup",
    "Stabilizer",
    "StabilizerCode",
    "surface_code",
    "toric_code",
    "color_code",
    "hypergraph_product_code",
    "hgp_code_from_checks",
    "bpc_code",
    "two_block_cyclic_code",
]
