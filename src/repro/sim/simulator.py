"""Leakage-aware QEC memory simulator.

Executes repeated syndrome-extraction rounds of a CSS code under the
circuit-level noise model of Section 6 (Pauli noise + leakage injection,
leaked-qubit CNOT malfunction, leakage transport, multi-level readout) while
a leakage-mitigation policy decides where to insert Leakage Reduction
Circuits.  Everything is vectorised over a batch of shots with NumPy, which
is what makes the paper's 100d-round sweeps tractable in pure Python.

The simulator reports the evaluation metrics of Section 7: data-leakage
population, LRC usage, false positives/negatives, and (optionally) the full
detector record needed to decode a memory experiment into a logical error
rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.lrc import LrcGadget, default_lrc
from ..circuits.schedule import RoundSchedule
from ..codes.base import StabilizerCode
from ..core.speculator import LeakagePolicy, PolicyDecision, SpeculationInput
from ..noise import NoiseParams
from .state import SimState

__all__ = ["SimulatorOptions", "RoundRecord", "RunResult", "LeakageSimulator"]


@dataclass(frozen=True)
class SimulatorOptions:
    """Run-level switches of the leakage simulator.

    Attributes
    ----------
    leakage_sampling:
        Start every shot with one uniformly chosen leaked data qubit
        (Section 6, "Scaling Simulations using Leakage Sampling"); this is
        how the paper makes 100d-round evaluations affordable.
    record_detectors:
        Keep the full Z-detector history needed for decoding; disable for
        long leakage-population sweeps to save memory (the paper's artifact
        does exactly this by commenting out ``stim::write_table_data``).
    record_patterns:
        Keep a histogram of observed speculation patterns, split by whether
        the data qubit was genuinely leaked (used by the Figure 5 / Figure 8
        pattern-breakdown benchmarks).
    """

    leakage_sampling: bool = False
    record_detectors: bool = False
    record_patterns: bool = False


@dataclass
class RoundRecord:
    """Aggregate statistics of one QEC round, averaged over the shot batch."""

    round_index: int
    data_leakage_population: float
    ancilla_leakage_population: float
    lrcs_applied: float
    false_positives: float
    false_negatives: float
    true_positives: float


@dataclass
class RunResult:
    """Everything produced by one simulator run."""

    code_name: str
    policy_name: str
    shots: int
    rounds: int
    noise: NoiseParams
    round_records: list[RoundRecord]
    total_data_lrcs: int
    total_ancilla_lrcs: int
    total_false_positives: int
    total_false_negatives: int
    total_true_positives: int
    total_leakage_events: int
    final_data_leaked: np.ndarray
    detector_history: np.ndarray | None = None
    final_detectors: np.ndarray | None = None
    observable_flips: np.ndarray | None = None
    pattern_histogram: dict[int, dict[int, tuple[int, int]]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived metrics (Section 7 of the paper)
    # ------------------------------------------------------------------ #
    @property
    def dlp_per_round(self) -> np.ndarray:
        """Data-leakage population after each round (fraction of data qubits)."""
        return np.array([r.data_leakage_population for r in self.round_records])

    @property
    def mean_dlp(self) -> float:
        """Average data-leakage population over the whole run."""
        return float(self.dlp_per_round.mean()) if self.round_records else 0.0

    @property
    def final_dlp(self) -> float:
        """Data-leakage population at the end of the run (equilibrium estimate)."""
        return float(self.final_data_leaked.mean())

    @property
    def lrcs_per_round(self) -> float:
        """Average number of data-qubit LRCs applied per round per shot."""
        if not self.rounds or not self.shots:
            return 0.0
        return self.total_data_lrcs / (self.rounds * self.shots)

    @property
    def false_positives_per_round(self) -> float:
        """Average unnecessary LRCs per round per shot."""
        if not self.rounds or not self.shots:
            return 0.0
        return self.total_false_positives / (self.rounds * self.shots)

    @property
    def false_negatives_per_round(self) -> float:
        """Average undetected leaked data qubits per round per shot."""
        if not self.rounds or not self.shots:
            return 0.0
        return self.total_false_negatives / (self.rounds * self.shots)

    @property
    def speculation_inaccuracy(self) -> float:
        """Combined FP + FN rate per round per shot (Table 4)."""
        return self.false_positives_per_round + self.false_negatives_per_round

    def summary(self) -> dict[str, float]:
        """Flat dictionary of headline metrics, convenient for tables."""
        return {
            "policy": self.policy_name,
            "shots": self.shots,
            "rounds": self.rounds,
            "mean_dlp": self.mean_dlp,
            "final_dlp": self.final_dlp,
            "lrcs_per_round": self.lrcs_per_round,
            "fp_per_round": self.false_positives_per_round,
            "fn_per_round": self.false_negatives_per_round,
            "speculation_inaccuracy": self.speculation_inaccuracy,
            "total_leakage_events": self.total_leakage_events,
        }


class LeakageSimulator:
    """Batched leakage-aware simulator of repeated QEC rounds."""

    def __init__(
        self,
        code: StabilizerCode,
        noise: NoiseParams,
        policy: LeakagePolicy,
        gadget: LrcGadget | None = None,
        options: SimulatorOptions | None = None,
        seed: int = 0,
    ) -> None:
        self.code = code
        self.noise = noise
        self.policy = policy
        self.gadget = gadget or default_lrc()
        self.options = options or SimulatorOptions()
        self.rng = np.random.default_rng(seed)
        self.schedule = RoundSchedule(code)
        self.schedule.validate()
        self.policy.prepare(code, noise)
        self._build_gather_structures()

    # ------------------------------------------------------------------ #
    # Precomputed index structures
    # ------------------------------------------------------------------ #
    def _build_gather_structures(self) -> None:
        code = self.code
        # Per entangling layer: ancilla / data indices and basis flags.
        self._slot_anc: list[np.ndarray] = []
        self._slot_data: list[np.ndarray] = []
        self._slot_is_z: list[np.ndarray] = []
        for layer in self.schedule.slots:
            self._slot_anc.append(np.array([op.stabilizer for op in layer], dtype=np.int64))
            self._slot_data.append(np.array([op.data_qubit for op in layer], dtype=np.int64))
            self._slot_is_z.append(np.array([op.basis == "Z" for op in layer], dtype=bool))
        # Basis flag per ancilla (True for Z-type stabilizers).
        self._anc_is_z = np.array([s.basis == "Z" for s in code.stabilizers], dtype=bool)
        self._z_stab_indices = np.array(
            [s.index for s in code.stabilizers if s.basis == "Z"], dtype=np.int64
        )
        # Speculation-pattern gather structure: for every bit position and
        # group size, the data qubits having such a group and the ancillas in it.
        self._max_width = max(code.pattern_widths)
        gather: dict[tuple[int, int], tuple[list[int], list[tuple[int, ...]]]] = {}
        for qubit, groups in enumerate(code.speculation_groups):
            for position, group in enumerate(groups):
                key = (position, len(group.stabilizers))
                gather.setdefault(key, ([], []))[0].append(qubit)
                gather[key][1].append(group.stabilizers)
        self._pattern_gather: list[tuple[int, np.ndarray, np.ndarray]] = []
        for (position, _), (qubits, stab_groups) in sorted(gather.items()):
            self._pattern_gather.append(
                (position, np.array(qubits, dtype=np.int64), np.array(stab_groups, dtype=np.int64))
            )
        # Adjacent-ancilla structure for MLR neighbour flags.
        neighbor_lists = [
            np.array([stab for stab, _ in code.data_adjacency[q]], dtype=np.int64)
            for q in range(code.num_data)
        ]
        by_count: dict[int, tuple[list[int], list[np.ndarray]]] = {}
        for qubit, ancillas in enumerate(neighbor_lists):
            by_count.setdefault(len(ancillas), ([], []))[0].append(qubit)
            by_count[len(ancillas)][1].append(ancillas)
        self._neighbor_gather = [
            (np.array(qubits, dtype=np.int64), np.stack(ancilla_rows))
            for qubits, ancilla_rows in by_count.values()
        ]
        # Z-stabilizer support matrix for the final data-readout detectors.
        self._z_support = code.parity_check_z.astype(bool)
        self._logical_z_support = code.logical_z.astype(bool)

    # ------------------------------------------------------------------ #
    # Main entry points
    # ------------------------------------------------------------------ #
    def run(self, shots: int, rounds: int) -> RunResult:
        """Simulate ``rounds`` QEC rounds for a batch of ``shots`` shots."""
        stream = self.run_incremental(shots, rounds)
        while True:
            try:
                next(stream)
            except StopIteration as stop:
                return stop.value

    def run_incremental(self, shots: int, rounds: int):
        """Generator variant of :meth:`run` for online (streaming) consumers.

        Yields one ``(round_index, z_detectors)`` pair after every QEC round,
        where ``z_detectors`` is the ``(shots, num_z_stabs)`` boolean array of
        this round's Z-detector flips — the exact per-round chunk the
        :mod:`repro.realtime` streaming pipeline consumes.  The generator's
        ``StopIteration`` value is the full :class:`RunResult` (drive it with
        ``next`` inside ``try``/``except`` or through
        :class:`repro.realtime.SimulatorStream`).  :meth:`run` is implemented
        on top of this generator, so both paths execute the identical
        sequence of RNG draws and are bit-for-bit interchangeable.
        """
        if shots <= 0 or rounds <= 0:
            raise ValueError("shots and rounds must be positive")
        noise, rng, code = self.noise, self.rng, self.code
        state = SimState(shots, code.num_data, code.num_ancilla)
        if self.options.leakage_sampling:
            seeded = rng.integers(0, code.num_data, size=shots)
            state.data_leaked[np.arange(shots), seeded] = True

        pending_lrc = np.zeros((shots, code.num_data), dtype=bool)
        pending_anc_lrc = np.zeros((shots, code.num_ancilla), dtype=bool)
        prev_pattern_ints = np.zeros((shots, code.num_data), dtype=np.int64)
        detector_history = (
            np.zeros((shots, rounds, len(self._z_stab_indices)), dtype=bool)
            if self.options.record_detectors
            else None
        )
        pattern_histogram: dict[int, dict[int, tuple[int, int]]] = {}

        round_records: list[RoundRecord] = []
        totals = {"lrc": 0, "anc_lrc": 0, "fp": 0, "fn": 0, "tp": 0, "leak_events": 0}

        for round_index in range(rounds):
            (
                record,
                pending_lrc,
                pending_anc_lrc,
                prev_pattern_ints,
                z_detectors,
            ) = self._run_round(
                state,
                round_index,
                pending_lrc,
                pending_anc_lrc,
                prev_pattern_ints,
                totals,
                detector_history,
                pattern_histogram,
            )
            round_records.append(record)
            yield round_index, z_detectors

        final_detectors, observable_flips = self._final_readout(state)

        return RunResult(
            code_name=code.name,
            policy_name=self.policy.describe(),
            shots=shots,
            rounds=rounds,
            noise=noise,
            round_records=round_records,
            total_data_lrcs=totals["lrc"],
            total_ancilla_lrcs=totals["anc_lrc"],
            total_false_positives=totals["fp"],
            total_false_negatives=totals["fn"],
            total_true_positives=totals["tp"],
            total_leakage_events=totals["leak_events"],
            final_data_leaked=state.data_leaked.copy(),
            detector_history=detector_history,
            final_detectors=final_detectors,
            observable_flips=observable_flips,
            pattern_histogram=pattern_histogram,
        )

    # ------------------------------------------------------------------ #
    # One QEC round
    # ------------------------------------------------------------------ #
    def _run_round(
        self,
        state: SimState,
        round_index: int,
        pending_lrc: np.ndarray,
        pending_anc_lrc: np.ndarray,
        prev_pattern_ints: np.ndarray,
        totals: dict[str, int],
        detector_history: np.ndarray | None,
        pattern_histogram: dict,
    ) -> tuple[RoundRecord, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        noise, rng = self.noise, self.rng
        shots = state.shots

        # 1. Apply the LRCs scheduled by last round's decision.
        lrcs_this_round = int(pending_lrc.sum())
        anc_lrcs_this_round = int(pending_anc_lrc.sum())
        totals["lrc"] += lrcs_this_round
        totals["anc_lrc"] += anc_lrcs_this_round
        self._apply_data_lrc(state, pending_lrc, totals)
        self._apply_ancilla_lrc(state, pending_anc_lrc, totals)

        # 2. Start-of-round data noise: depolarisation plus environment leakage.
        state.depolarize_data(noise.p, rng)
        new_leak = state.inject_data_leakage(noise.p_leak, rng)
        totals["leak_events"] += int(new_leak.sum())

        # 3. Ancilla reset (clears most parity-qubit leakage; data-qubit
        #    leakage has no such escape hatch).
        state.reset_ancillas(noise.p, rng, noise.ancilla_reset_removes_leakage)
        new_anc_leak = state.inject_ancilla_leakage(noise.p_leak, rng)
        totals["leak_events"] += int(new_anc_leak.sum())

        # 4. Entangling layers.
        for anc_idx, data_idx, is_z in zip(self._slot_anc, self._slot_data, self._slot_is_z):
            totals["leak_events"] += self._apply_cnot_layer(state, anc_idx, data_idx, is_z)

        # 5. Measurement, MLR, detectors.
        measurement, mlr_flags = self._measure(state)
        detectors = measurement ^ state.prev_measurement
        if round_index == 0:
            # X-stabilizer outcomes are intrinsically random in the first
            # round of a memory-Z experiment; their first detector is defined
            # only from round 1 onwards.
            detectors[:, ~self._anc_is_z] = False
        state.prev_measurement = measurement
        z_detectors = detectors[:, self._z_stab_indices]
        if detector_history is not None:
            detector_history[:, round_index, :] = z_detectors

        # 6. Speculation.
        pattern_ints = self._extract_patterns(detectors)
        mlr_neighbor = self._mlr_neighbor(mlr_flags) if mlr_flags is not None else None
        ctx = SpeculationInput(
            round_index=round_index,
            pattern_ints=pattern_ints,
            prev_pattern_ints=prev_pattern_ints,
            detectors=detectors,
            mlr_flags=mlr_flags,
            mlr_neighbor=mlr_neighbor,
            data_leaked=state.data_leaked,
        )
        decision = self.policy.decide(ctx)
        next_lrc = np.asarray(decision.data_lrc, dtype=bool)
        next_anc_lrc = (
            np.asarray(decision.ancilla_lrc, dtype=bool)
            if decision.ancilla_lrc is not None
            else np.zeros((shots, self.code.num_ancilla), dtype=bool)
        )

        # 7. Accuracy accounting at decision time.
        false_positive = next_lrc & ~state.data_leaked
        false_negative = state.data_leaked & ~next_lrc
        true_positive = next_lrc & state.data_leaked
        totals["fp"] += int(false_positive.sum())
        totals["fn"] += int(false_negative.sum())
        totals["tp"] += int(true_positive.sum())

        if self.options.record_patterns:
            self._record_patterns(pattern_ints, state.data_leaked, pattern_histogram)

        record = RoundRecord(
            round_index=round_index,
            data_leakage_population=state.leaked_fraction(),
            ancilla_leakage_population=float(state.anc_leaked.mean()),
            lrcs_applied=lrcs_this_round / shots,
            false_positives=float(false_positive.sum()) / shots,
            false_negatives=float(false_negative.sum()) / shots,
            true_positives=float(true_positive.sum()) / shots,
        )
        return record, next_lrc, next_anc_lrc, pattern_ints, z_detectors

    # ------------------------------------------------------------------ #
    # Physical processes
    # ------------------------------------------------------------------ #
    def _apply_data_lrc(self, state: SimState, mask: np.ndarray, totals: dict[str, int]) -> None:
        """Apply LRC gadgets to the masked data qubits."""
        if not mask.any():
            return
        noise, rng = self.noise, self.rng
        removed = mask & state.data_leaked & (
            rng.random(mask.shape) < self.gadget.removal_prob
        )
        state.data_leaked &= ~removed
        # A returned qubit re-enters the computational subspace in a random
        # state: model as a 50/50 X flip plus full dephasing.
        state.data_x ^= removed & (rng.random(mask.shape) < 0.5)
        state.data_z ^= removed & (rng.random(mask.shape) < 0.5)
        # Gadget noise on every treated qubit (leaked or not).
        gate_error = self.gadget.gate_error(noise)
        hit = mask & (rng.random(mask.shape) < gate_error)
        pauli = rng.integers(0, 3, size=mask.shape)
        state.data_x ^= hit & (pauli != 2)
        state.data_z ^= hit & (pauli != 0)
        induced = mask & (rng.random(mask.shape) < self.gadget.induced_leakage(noise))
        new_leak = induced & ~state.data_leaked
        state.data_leaked |= new_leak
        totals["leak_events"] += int(new_leak.sum())

    def _apply_ancilla_lrc(self, state: SimState, mask: np.ndarray, totals: dict[str, int]) -> None:
        """Apply LRC gadgets to the masked ancilla qubits."""
        if not mask.any():
            return
        noise, rng = self.noise, self.rng
        removed = mask & state.anc_leaked & (
            rng.random(mask.shape) < self.gadget.removal_prob
        )
        state.anc_leaked &= ~removed
        gate_error = self.gadget.gate_error(noise)
        hit = mask & (rng.random(mask.shape) < gate_error)
        pauli = rng.integers(0, 3, size=mask.shape)
        state.anc_x ^= hit & (pauli != 2)
        state.anc_z ^= hit & (pauli != 0)
        induced = mask & (rng.random(mask.shape) < self.gadget.induced_leakage(noise))
        new_leak = induced & ~state.anc_leaked
        state.anc_leaked |= new_leak
        totals["leak_events"] += int(new_leak.sum())

    def _apply_cnot_layer(
        self,
        state: SimState,
        anc_idx: np.ndarray,
        data_idx: np.ndarray,
        is_z: np.ndarray,
    ) -> int:
        """Execute one entangling layer; return the number of new leakage events."""
        noise, rng = self.noise, self.rng
        shots = state.shots
        gates = anc_idx.shape[0]
        shape = (shots, gates)

        data_x = state.data_x[:, data_idx]
        data_z = state.data_z[:, data_idx]
        anc_x = state.anc_x[:, anc_idx]
        anc_z = state.anc_z[:, anc_idx]
        data_leak = state.data_leaked[:, data_idx]
        anc_leak = state.anc_leaked[:, anc_idx]
        healthy = ~data_leak & ~anc_leak
        is_z_row = is_z[np.newaxis, :]

        # Ideal CNOT propagation where both operands are in the computational
        # subspace.  Z-type checks: control = data, target = ancilla;
        # X-type checks: control = ancilla, target = data.
        new_anc_x = anc_x ^ (data_x & healthy & is_z_row)
        new_data_z = data_z ^ (anc_z & healthy & is_z_row)
        new_data_x = data_x ^ (anc_x & healthy & ~is_z_row)
        new_anc_z = anc_z ^ (data_z & healthy & ~is_z_row)

        # Leaked-operand malfunction: the healthy partner either inherits the
        # leakage (probability = mobility) or picks up a random Pauli.
        data_only = data_leak & ~anc_leak
        anc_only = anc_leak & ~data_leak
        transport = rng.random(shape) < noise.leakage_mobility
        anc_gets_leak = data_only & transport
        data_gets_leak = anc_only & transport
        scramble_anc = data_only & ~transport
        scramble_data = anc_only & ~transport
        rand_x = rng.random(shape) < 0.5
        rand_z = rng.random(shape) < 0.5
        new_anc_x ^= scramble_anc & rand_x
        new_anc_z ^= scramble_anc & rand_z
        rand_x2 = rng.random(shape) < 0.5
        rand_z2 = rng.random(shape) < 0.5
        new_data_x ^= scramble_data & rand_x2
        new_data_z ^= scramble_data & rand_z2

        # Two-qubit depolarising gate error.
        gate_hit = rng.random(shape) < noise.p
        pauli_pair = rng.integers(1, 16, size=shape)
        new_data_x ^= gate_hit & ((pauli_pair & 1) != 0)
        new_data_z ^= gate_hit & ((pauli_pair & 2) != 0)
        new_anc_x ^= gate_hit & ((pauli_pair & 4) != 0)
        new_anc_z ^= gate_hit & ((pauli_pair & 8) != 0)

        # Gate-induced leakage on both operands.
        data_gate_leak = rng.random(shape) < noise.p_leak
        anc_gate_leak = rng.random(shape) < noise.p_leak

        # Write everything back.
        state.data_x[:, data_idx] = new_data_x
        state.data_z[:, data_idx] = new_data_z
        state.anc_x[:, anc_idx] = new_anc_x
        state.anc_z[:, anc_idx] = new_anc_z

        new_data_leak_mask = (data_gets_leak | data_gate_leak) & ~state.data_leaked[:, data_idx]
        new_anc_leak_mask = (anc_gets_leak | anc_gate_leak) & ~state.anc_leaked[:, anc_idx]
        state.data_leaked[:, data_idx] |= new_data_leak_mask
        state.anc_leaked[:, anc_idx] |= new_anc_leak_mask
        return int(new_data_leak_mask.sum()) + int(new_anc_leak_mask.sum())

    def _measure(self, state: SimState) -> tuple[np.ndarray, np.ndarray | None]:
        """Measure every ancilla; return (outcomes, MLR flags or None)."""
        noise, rng = self.noise, self.rng
        raw = np.where(self._anc_is_z[np.newaxis, :], state.anc_x, state.anc_z)
        outcome = raw ^ (rng.random(raw.shape) < noise.p)
        if noise.readout_leak_random:
            random_bits = rng.random(raw.shape) < 0.5
            outcome = np.where(state.anc_leaked, random_bits, outcome)
        else:
            outcome = np.where(state.anc_leaked, True, outcome)

        mlr_flags: np.ndarray | None = None
        if self.policy.uses_mlr:
            missed = rng.random(raw.shape) < noise.mlr_error
            false_flag = rng.random(raw.shape) < noise.p
            mlr_flags = (state.anc_leaked & ~missed) | (~state.anc_leaked & false_flag)
            # MLR-triggered resets return correctly flagged ancillas to the
            # computational subspace before the next round.
            state.anc_leaked &= ~(mlr_flags & state.anc_leaked)
        return outcome, mlr_flags

    # ------------------------------------------------------------------ #
    # Pattern extraction and bookkeeping
    # ------------------------------------------------------------------ #
    def _extract_patterns(self, detectors: np.ndarray) -> np.ndarray:
        """Pack each data qubit's adjacent detector flips into an integer."""
        shots = detectors.shape[0]
        pattern_ints = np.zeros((shots, self.code.num_data), dtype=np.int64)
        for position, qubits, stab_groups in self._pattern_gather:
            if stab_groups.shape[1] == 1:
                bits = detectors[:, stab_groups[:, 0]]
            else:
                bits = detectors[:, stab_groups[:, 0]]
                for column in range(1, stab_groups.shape[1]):
                    bits = bits | detectors[:, stab_groups[:, column]]
            pattern_ints[:, qubits] |= bits.astype(np.int64) << position
        return pattern_ints

    def _mlr_neighbor(self, mlr_flags: np.ndarray) -> np.ndarray:
        """OR of the MLR flags of each data qubit's adjacent ancillas."""
        shots = mlr_flags.shape[0]
        result = np.zeros((shots, self.code.num_data), dtype=bool)
        for qubits, ancilla_rows in self._neighbor_gather:
            flags = mlr_flags[:, ancilla_rows[:, 0]]
            for column in range(1, ancilla_rows.shape[1]):
                flags = flags | mlr_flags[:, ancilla_rows[:, column]]
            result[:, qubits] = flags
        return result

    def _record_patterns(
        self,
        pattern_ints: np.ndarray,
        data_leaked: np.ndarray,
        histogram: dict[int, dict[int, tuple[int, int]]],
    ) -> None:
        """Accumulate per-width pattern counts split by true leakage status."""
        widths = np.asarray(self.code.pattern_widths)
        for width in np.unique(widths):
            qubits = np.nonzero(widths == width)[0]
            values = pattern_ints[:, qubits].ravel()
            leaked = data_leaked[:, qubits].ravel()
            width_hist = histogram.setdefault(int(width), {})
            for value in range(1 << int(width)):
                select = values == value
                leaked_count = int((select & leaked).sum())
                clean_count = int((select & ~leaked).sum())
                if value in width_hist:
                    old_leaked, old_clean = width_hist[value]
                    width_hist[value] = (old_leaked + leaked_count, old_clean + clean_count)
                else:
                    width_hist[value] = (leaked_count, clean_count)

    # ------------------------------------------------------------------ #
    # Final readout
    # ------------------------------------------------------------------ #
    def _final_readout(self, state: SimState) -> tuple[np.ndarray, np.ndarray]:
        """Transversal data readout: final detectors and the logical observable."""
        noise, rng = self.noise, self.rng
        data_meas = state.data_x ^ (rng.random(state.data_x.shape) < noise.p)
        if noise.readout_leak_random:
            random_bits = rng.random(data_meas.shape) < 0.5
            data_meas = np.where(state.data_leaked, random_bits, data_meas)
        else:
            data_meas = np.where(state.data_leaked, True, data_meas)
        # Final-round detectors: parity of the measured data over each
        # Z-stabilizer support, compared against that stabilizer's last
        # in-circuit measurement.
        z_parity = (data_meas.astype(np.uint8) @ self._z_support.T.astype(np.uint8)) % 2
        last_z = state.prev_measurement[:, self._z_stab_indices]
        final_detectors = z_parity.astype(bool) ^ last_z
        observable = (
            data_meas[:, self._logical_z_support].sum(axis=1) % 2
        ).astype(bool)
        return final_detectors, observable
