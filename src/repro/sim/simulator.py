"""Leakage-aware QEC memory simulator.

Executes repeated syndrome-extraction rounds of a CSS code under the
circuit-level noise model of Section 6 (Pauli noise + leakage injection,
leaked-qubit CNOT malfunction, leakage transport, multi-level readout) while
a leakage-mitigation policy decides where to insert Leakage Reduction
Circuits.  Everything is vectorised over a batch of shots with NumPy, which
is what makes the paper's 100d-round sweeps tractable in pure Python.

The per-round hot path runs entirely inside a preallocated
:class:`~repro.sim.workspace.RoundWorkspace`: Bernoulli draws land in pinned
float64 buffers via ``Generator.random(out=...)`` and the Pauli/XOR algebra
is written as in-place ufunc kernels, so a round performs no round-shaped
allocations.  The *sequence, shapes and order* of RNG draws is a frozen
contract — it matches the allocating baseline draw for draw, so runs are
bit-for-bit reproducible against recorded fixtures and against the frozen
reference implementation in ``benchmarks/bench_sim_round.py``
(``tests/test_sim_equivalence.py`` pins this).

The simulator reports the evaluation metrics of Section 7: data-leakage
population, LRC usage, false positives/negatives, and (optionally) the full
detector record needed to decode a memory experiment into a logical error
rate.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Generator as GeneratorType

import numpy as np

from ..circuits.lrc import LrcGadget, default_lrc
from ..circuits.schedule import RoundSchedule
from ..codes.base import StabilizerCode
from ..core.speculator import LeakagePolicy, SpeculationInput
from ..noise import NoiseParams
from ..obs.trace import Tracer, current_tracer
from . import _ckernels
from .draws import DrawOp, DrawPlan, make_draw_source
from .state import ChannelScratch, SimState
from .workspace import RoundWorkspace

__all__ = ["SimulatorOptions", "RoundRecord", "RunResult", "LeakageSimulator"]

#: Phase labels of the per-round breakdown (``tools/profile_sim.py``).
PHASE_NAMES = ("noise", "cnot_layers", "measure", "speculate", "bookkeeping")


def _pack_register(
    pack: np.ndarray, x: np.ndarray, z: np.ndarray, leaked: np.ndarray, tmp: np.ndarray
) -> None:
    """Pack one register's bool planes into ``x | z<<1 | leaked<<2`` (uint8).

    Bool arrays are byte-backed 0/1, so their uint8 views feed the bitwise
    ops without any copies.
    """
    np.copyto(pack, x.view(np.uint8))
    np.left_shift(z.view(np.uint8), 1, out=tmp)
    pack |= tmp
    np.left_shift(leaked.view(np.uint8), 2, out=tmp)
    pack |= tmp


def _unpack_register(
    pack: np.ndarray, x: np.ndarray, z: np.ndarray, leaked: np.ndarray, tmp: np.ndarray
) -> None:
    """Split a packed uint8 plane back into the three bool arrays."""
    np.bitwise_and(pack, 1, out=x.view(np.uint8))
    np.right_shift(pack, 1, out=tmp)
    np.bitwise_and(tmp, 1, out=z.view(np.uint8))
    np.right_shift(pack, 2, out=leaked.view(np.uint8))


@dataclass(frozen=True)
class SimulatorOptions:
    """Run-level switches of the leakage simulator.

    Attributes
    ----------
    leakage_sampling:
        Start every shot with one uniformly chosen leaked data qubit
        (Section 6, "Scaling Simulations using Leakage Sampling"); this is
        how the paper makes 100d-round evaluations affordable.
    record_detectors:
        Keep the full Z-detector history needed for decoding; disable for
        long leakage-population sweeps to save memory (the paper's artifact
        does exactly this by commenting out ``stim::write_table_data``).
    record_patterns:
        Keep a histogram of observed speculation patterns, split by whether
        the data qubit was genuinely leaked (used by the Figure 5 / Figure 8
        pattern-breakdown benchmarks).
    rng_prefetch:
        Draw-generation strategy (performance-only; results are bit-identical
        either way): ``"auto"`` overlaps PCG64 generation with the Pauli
        algebra on a worker thread for large shot batches, ``"on"``/``"off"``
        force the choice.  The ``REPRO_SIM_PREFETCH`` environment variable
        overrides this field.
    """

    leakage_sampling: bool = False
    record_detectors: bool = False
    record_patterns: bool = False
    rng_prefetch: str = "auto"


@dataclass
class RoundRecord:
    """Aggregate statistics of one QEC round, averaged over the shot batch."""

    round_index: int
    data_leakage_population: float
    ancilla_leakage_population: float
    lrcs_applied: float
    false_positives: float
    false_negatives: float
    true_positives: float


@dataclass
class RunResult:
    """Everything produced by one simulator run."""

    code_name: str
    policy_name: str
    shots: int
    rounds: int
    noise: NoiseParams
    round_records: list[RoundRecord]
    total_data_lrcs: int
    total_ancilla_lrcs: int
    total_false_positives: int
    total_false_negatives: int
    total_true_positives: int
    total_leakage_events: int
    final_data_leaked: np.ndarray
    detector_history: np.ndarray | None = None
    final_detectors: np.ndarray | None = None
    observable_flips: np.ndarray | None = None
    pattern_histogram: dict[int, dict[int, tuple[int, int]]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived metrics (Section 7 of the paper)
    # ------------------------------------------------------------------ #
    @property
    def dlp_per_round(self) -> np.ndarray:
        """Data-leakage population after each round (fraction of data qubits)."""
        return np.array([r.data_leakage_population for r in self.round_records])

    @property
    def mean_dlp(self) -> float:
        """Average data-leakage population over the whole run."""
        return float(self.dlp_per_round.mean()) if self.round_records else 0.0

    @property
    def final_dlp(self) -> float:
        """Data-leakage population at the end of the run (equilibrium estimate)."""
        return float(self.final_data_leaked.mean())

    @property
    def lrcs_per_round(self) -> float:
        """Average number of data-qubit LRCs applied per round per shot."""
        if not self.rounds or not self.shots:
            return 0.0
        return self.total_data_lrcs / (self.rounds * self.shots)

    @property
    def false_positives_per_round(self) -> float:
        """Average unnecessary LRCs per round per shot."""
        if not self.rounds or not self.shots:
            return 0.0
        return self.total_false_positives / (self.rounds * self.shots)

    @property
    def false_negatives_per_round(self) -> float:
        """Average undetected leaked data qubits per round per shot."""
        if not self.rounds or not self.shots:
            return 0.0
        return self.total_false_negatives / (self.rounds * self.shots)

    @property
    def speculation_inaccuracy(self) -> float:
        """Combined FP + FN rate per round per shot (Table 4)."""
        return self.false_positives_per_round + self.false_negatives_per_round

    def summary(self) -> dict[str, float | int | str]:
        """Flat dictionary of headline metrics, convenient for tables.

        Values mix types: ``policy`` is the policy's display name, ``shots``
        / ``rounds`` / ``total_leakage_events`` are exact integer counts, and
        the remaining metrics are per-round floats.
        """
        return {
            "policy": self.policy_name,
            "shots": self.shots,
            "rounds": self.rounds,
            "mean_dlp": self.mean_dlp,
            "final_dlp": self.final_dlp,
            "lrcs_per_round": self.lrcs_per_round,
            "fp_per_round": self.false_positives_per_round,
            "fn_per_round": self.false_negatives_per_round,
            "speculation_inaccuracy": self.speculation_inaccuracy,
            "total_leakage_events": self.total_leakage_events,
        }


class LeakageSimulator:
    """Batched leakage-aware simulator of repeated QEC rounds."""

    def __init__(
        self,
        code: StabilizerCode,
        noise: NoiseParams,
        policy: LeakagePolicy,
        gadget: LrcGadget | None = None,
        options: SimulatorOptions | None = None,
        seed: int = 0,
    ) -> None:
        self.code = code
        self.noise = noise
        self.policy = policy
        self.gadget = gadget or default_lrc()
        self.options = options or SimulatorOptions()
        self.rng = np.random.default_rng(seed)
        self.schedule = RoundSchedule(code)
        self.schedule.validate()
        self.policy.prepare(code, noise)
        # Run-constant gadget rates, hoisted out of the round loop.
        self._lrc_gate_error = self.gadget.gate_error(noise)
        self._lrc_induced_leak = self.gadget.induced_leakage(noise)
        self._phase_ns: dict[str, int] | None = None
        self._round_tracer: Tracer | None = None
        self._use_ckernels = _ckernels.available()
        self._build_gather_structures()

    # ------------------------------------------------------------------ #
    # Precomputed index structures
    # ------------------------------------------------------------------ #
    def _build_gather_structures(self) -> None:
        code = self.code
        # Per entangling layer: ancilla / data indices and basis flags.
        self._slot_anc: list[np.ndarray] = []
        self._slot_data: list[np.ndarray] = []
        self._slot_is_z: list[np.ndarray] = []
        for layer in self.schedule.slots:
            self._slot_anc.append(np.array([op.stabilizer for op in layer], dtype=np.int64))
            self._slot_data.append(np.array([op.data_qubit for op in layer], dtype=np.int64))
            self._slot_is_z.append(np.array([op.basis == "Z" for op in layer], dtype=bool))
        # Basis flag per ancilla (True for Z-type stabilizers).
        self._anc_is_z = np.array([s.basis == "Z" for s in code.stabilizers], dtype=bool)
        self._z_stab_indices = np.array(
            [s.index for s in code.stabilizers if s.basis == "Z"], dtype=np.int64
        )
        self._x_stab_indices = np.nonzero(~self._anc_is_z)[0]
        # Per-ancilla bit shift selecting the measured plane from the packed
        # uint8 representation: bit 0 (X frame) for Z-type checks, bit 1
        # (Z frame) for X-type checks.
        self._measure_shift_row = np.where(self._anc_is_z, 0, 1).astype(np.uint8)[
            np.newaxis, :
        ]
        # Speculation-pattern gather structure: for every bit position and
        # group size, the data qubits having such a group and the ancillas in it.
        self._max_width = max(code.pattern_widths)
        gather: dict[tuple[int, int], tuple[list[int], list[tuple[int, ...]]]] = {}
        for qubit, groups in enumerate(code.speculation_groups):
            for position, group in enumerate(groups):
                key = (position, len(group.stabilizers))
                gather.setdefault(key, ([], []))[0].append(qubit)
                gather[key][1].append(group.stabilizers)
        self._pattern_gather: list[tuple[int, np.ndarray, np.ndarray]] = []
        for (position, _), (qubits, stab_groups) in sorted(gather.items()):
            self._pattern_gather.append(
                (position, np.array(qubits, dtype=np.int64), np.array(stab_groups, dtype=np.int64))
            )
        # GEMM formulation of the pattern extraction: one float32 matmul
        # counts the flipped members of every (qubit, position) group, a
        # threshold turns counts into OR flags, and a second matmul places
        # ``2**position`` weights per qubit.  When every group has a single
        # member (surface codes) the two matrices collapse into one and the
        # threshold disappears.  float32 is exact here: counts are bounded by
        # the stabilizer degree and weights by ``2**max_width`` (both far
        # below 2**24).
        if self._max_width > 20:  # pragma: no cover - no such code family yet
            raise NotImplementedError(
                "pattern widths above 20 bits would overflow the float32 "
                "pattern-extraction GEMM"
            )
        num_groups = sum(len(groups) for groups in code.speculation_groups)
        members = np.zeros((code.num_ancilla, num_groups), dtype=np.float32)
        weights = np.zeros((num_groups, code.num_data), dtype=np.float32)
        column = 0
        single_member = True
        for qubit, groups in enumerate(code.speculation_groups):
            for position, group in enumerate(groups):
                for stab in group.stabilizers:
                    members[stab, column] = 1.0
                weights[column, qubit] = float(1 << position)
                single_member &= len(group.stabilizers) == 1
                column += 1
        self._pattern_num_groups = num_groups
        self._pattern_single_member = single_member
        # int32 pattern buffers halve the lookup-gather traffic; two-round
        # policies key on ``pattern + (prev << width)`` so int32 is safe while
        # 2*width+1 fits in 31 bits (true for every supported code family).
        self._pattern_dtype = np.int32 if 2 * self._max_width + 1 < 31 else np.int64
        if single_member:
            self._pattern_matrix = members @ weights
            self._pattern_members = None
            self._pattern_weights = None
        else:
            self._pattern_matrix = None
            self._pattern_members = members
            self._pattern_weights = weights
        # Adjacent-ancilla structure for MLR neighbour flags.
        neighbor_lists = [
            np.array([stab for stab, _ in code.data_adjacency[q]], dtype=np.int64)
            for q in range(code.num_data)
        ]
        by_count: dict[int, tuple[list[int], list[np.ndarray]]] = {}
        for qubit, ancillas in enumerate(neighbor_lists):
            by_count.setdefault(len(ancillas), ([], []))[0].append(qubit)
            by_count[len(ancillas)][1].append(ancillas)
        self._neighbor_gather = [
            (np.array(qubits, dtype=np.int64), np.stack(ancilla_rows))
            for qubits, ancilla_rows in by_count.values()
        ]
        # Data qubits grouped by pattern width, in ascending width order
        # (np.unique order), for the bincount pattern accounting.
        widths = np.asarray(code.pattern_widths)
        self._width_groups = [
            (int(width), np.nonzero(widths == width)[0]) for width in np.unique(widths)
        ]
        # Z-stabilizer support matrix for the final data-readout detectors.
        self._z_support = code.parity_check_z.astype(bool)
        self._z_support_t_u8 = self._z_support.T.astype(np.uint8)
        self._logical_z_support = code.logical_z.astype(bool)

    def _make_workspace(self, shots: int) -> RoundWorkspace:
        """Allocate the per-run workspace matching this code/schedule/policy."""
        return RoundWorkspace(
            shots=shots,
            num_data=self.code.num_data,
            num_ancilla=self.code.num_ancilla,
            layer_is_z=self._slot_is_z,
            num_pattern_groups=self._pattern_num_groups,
            pattern_needs_threshold=not self._pattern_single_member,
            pattern_dtype=self._pattern_dtype,
            uses_mlr=self.policy.uses_mlr,
            emits_ancilla_lrc=self.policy.emits_ancilla_lrc,
        )

    def _build_draw_plan(self, shots: int, rounds: int) -> DrawPlan:
        """Declare the run's per-round RNG schedule (the frozen contract).

        Every entry mirrors one ``Generator`` call of the baseline
        implementation, in baseline order; conditional channels that the
        baseline skips entirely (``p <= 0`` guards) are omitted, while
        unconditional draws with degenerate probabilities stay in the plan
        and are satisfied by ``BitGenerator.advance`` plus a constant mask.

        Stationary noise compiles one shared ``body``; time-structured noise
        compiles one body per round from that round's effective parameters
        (distinct epochs only — identical epochs share the same op list).
        Schedules preserve zero-ness, so per-round bodies contain the same
        *set* of draws as the stationary body, just different thresholds.
        """
        noise, gadget = self.noise, self.gadget
        plan = DrawPlan()
        data = plan.shape_id((shots, self.code.num_data))
        anc = plan.shape_id((shots, self.code.num_ancilla))

        def lrc_segment(shape_id: int, with_flips: bool) -> list[DrawOp]:
            ops = [DrawOp("bern", shape_id, threshold=gadget.removal_prob)]
            if with_flips:
                # Only data qubits randomise their frame on return from the
                # leaked subspace; ancillas are reset right afterwards, so
                # the baseline never drew these for them.
                ops.append(DrawOp("bern", shape_id, threshold=0.5))
                ops.append(DrawOp("bern", shape_id, threshold=0.5))
            ops.extend(
                (
                    DrawOp("bern", shape_id, threshold=self._lrc_gate_error),
                    DrawOp("randint", shape_id, low=0, high=3),
                    DrawOp("bern", shape_id, threshold=self._lrc_induced_leak),
                )
            )
            return ops

        plan.lrc_data = lrc_segment(data, with_flips=True)
        plan.lrc_anc = lrc_segment(anc, with_flips=False)

        if noise.is_time_structured:
            plan.bodies = []
            compiled: dict = {}
            for round_index in range(rounds):
                round_noise = noise.params_for_round(round_index)
                body = compiled.get(round_noise)
                if body is None:
                    body = self._plan_round_body(plan, round_noise, shots, data, anc)
                    compiled[round_noise] = body
                plan.bodies.append(body)
        else:
            plan.body = self._plan_round_body(plan, noise, shots, data, anc)

        final = [DrawOp("bern", data, threshold=noise.p)]
        if noise.readout_leak_random:
            final.append(DrawOp("bern", data, threshold=0.5))
        plan.final = final
        return plan

    def _plan_round_body(
        self, plan: DrawPlan, noise, shots: int, data: int, anc: int
    ) -> list[DrawOp]:
        """One round's fixed draw schedule for the given (flat) parameters."""
        body: list[DrawOp] = []
        if noise.p > 0:  # depolarize_data
            body.append(DrawOp("bern", data, threshold=noise.p))
            body.append(DrawOp("randint", data, low=0, high=3))
        if noise.p_leak > 0:  # inject_data_leakage
            body.append(DrawOp("bern", data, threshold=noise.p_leak))
        if noise.p > 0:  # reset_ancillas flips
            body.append(DrawOp("bern", anc, threshold=noise.p))
            body.append(DrawOp("bern", anc, threshold=noise.p))
        if noise.ancilla_reset_removes_leakage > 0:
            body.append(
                DrawOp("bern", anc, threshold=noise.ancilla_reset_removes_leakage)
            )
        if noise.p_leak > 0:  # inject_ancilla_leakage
            body.append(DrawOp("bern", anc, threshold=noise.p_leak))
        for anc_idx in self._slot_anc:  # entangling layers
            if not len(anc_idx):
                continue
            layer = plan.shape_id((shots, len(anc_idx)))
            body.append(DrawOp("bern", layer, threshold=noise.leakage_mobility))
            body.extend(DrawOp("bern", layer, threshold=0.5) for _ in range(4))
            body.append(DrawOp("bern", layer, threshold=noise.gate_error))
            body.append(DrawOp("randint", layer, low=1, high=16))
            body.append(DrawOp("bern", layer, threshold=noise.p_leak))
            body.append(DrawOp("bern", layer, threshold=noise.p_leak))
        body.append(DrawOp("bern", anc, threshold=noise.p))  # measurement flip
        if noise.readout_leak_random:
            body.append(DrawOp("bern", anc, threshold=0.5))
        if self.policy.uses_mlr:
            body.append(DrawOp("bern", anc, threshold=noise.mlr_error))
            body.append(DrawOp("bern", anc, threshold=noise.p))
        return body

    # ------------------------------------------------------------------ #
    # Phase instrumentation (tools/profile_sim.py)
    # ------------------------------------------------------------------ #
    def enable_phase_timing(self) -> dict[str, int]:
        """Accumulate per-phase wall-clock (ns) across subsequent rounds.

        Returns the live accumulator dict (phase name -> total ns); it is
        also readable through :meth:`phase_times`.  Timing adds two
        ``perf_counter_ns`` calls per phase per round; leave it disabled for
        production sweeps.
        """
        self._phase_ns = {name: 0 for name in PHASE_NAMES}
        return self._phase_ns

    def phase_times(self) -> dict[str, int] | None:
        """Per-phase accumulated nanoseconds, or ``None`` when disabled."""
        return self._phase_ns

    def _phase_mark(self, phase: str, tick: int, round_index: int) -> int:
        """Close one round phase that started at ``tick``; return the new tick.

        Feeds both instrumentation sinks from a single clock read: the
        legacy phase-timing accumulator (when enabled) and the active
        tracer's ``sim.phase.*`` spans (when a telemetry scope is open).
        Pure observation — no RNG access, no state mutation.
        """
        now = time.perf_counter_ns()
        timing = self._phase_ns
        if timing is not None:
            timing[phase] += now - tick
        tracer = self._round_tracer
        if tracer is not None:
            tracer.complete_ns(f"sim.phase.{phase}", tick, now, {"round": round_index})
        return now

    # ------------------------------------------------------------------ #
    # Main entry points
    # ------------------------------------------------------------------ #
    def run(self, shots: int, rounds: int) -> RunResult:
        """Simulate ``rounds`` QEC rounds for a batch of ``shots`` shots."""
        stream = self.run_incremental(shots, rounds)
        try:
            while True:
                next(stream)
        except StopIteration as stop:
            if stop.value is None:  # pragma: no cover - generator contract
                raise RuntimeError(
                    "run_incremental exhausted without producing a RunResult"
                ) from None
            return stop.value

    def run_incremental(
        self, shots: int, rounds: int, detector_out: np.ndarray | None = None
    ) -> GeneratorType[tuple[int, np.ndarray], None, RunResult]:
        """Generator variant of :meth:`run` for online (streaming) consumers.

        Yields one ``(round_index, z_detectors)`` pair after every QEC round,
        where ``z_detectors`` is the ``(shots, num_z_stabs)`` boolean array of
        this round's Z-detector flips — the exact per-round chunk the
        :mod:`repro.realtime` streaming pipeline consumes.  By default each
        yielded array is freshly allocated (not a workspace view), so
        consumers may retain it across rounds.  Passing ``detector_out`` (a
        writable ``(shots, num_z_stabs)`` bool array) switches to zero-copy
        streaming: every yield returns *that same buffer*, refilled in place
        each round, so the consumer must use the chunk before advancing the
        generator — the contract :class:`repro.pipeline.FusedPipeline` relies
        on.  The generator's ``StopIteration`` value is the full
        :class:`RunResult` (drive it with ``next`` inside ``try``/``except``
        or through :class:`repro.realtime.SimulatorStream`).  :meth:`run` is
        implemented on top of this generator, so both paths execute the
        identical sequence of RNG draws and are bit-for-bit interchangeable.
        """
        if shots <= 0 or rounds <= 0:
            raise ValueError("shots and rounds must be positive")
        if detector_out is not None:
            expected = (shots, len(self._z_stab_indices))
            if (
                detector_out.shape != expected
                or detector_out.dtype != np.bool_
                or not detector_out.flags.writeable
            ):
                raise ValueError(
                    f"detector_out must be a writable bool array of shape {expected}"
                )
        # Resolve the telemetry scope once per run; the round loop then only
        # pays ``is not None`` checks (see benchmarks/bench_obs_overhead.py).
        tracer = self._round_tracer = current_tracer()
        run_start_ns = time.perf_counter_ns() if tracer is not None else 0
        noise, rng, code = self.noise, self.rng, self.code
        state = SimState(shots, code.num_data, code.num_ancilla)
        if self.options.leakage_sampling:
            seeded = rng.integers(0, code.num_data, size=shots)
            state.data_leaked[np.arange(shots), seeded] = True

        ws = self._make_workspace(shots)
        prefetch = os.environ.get("REPRO_SIM_PREFETCH", "") or self.options.rng_prefetch
        source = make_draw_source(
            rng, self._build_draw_plan(shots, rounds), rounds, shots, prefetch
        )
        detector_history = (
            np.zeros((shots, rounds, len(self._z_stab_indices)), dtype=bool)
            if self.options.record_detectors
            else None
        )
        pattern_histogram: dict[int, dict[int, tuple[int, int]]] = {}

        round_records: list[RoundRecord] = []
        totals = {"lrc": 0, "anc_lrc": 0, "fp": 0, "fn": 0, "tp": 0, "leak_events": 0}

        try:
            for round_index in range(rounds):
                record, z_detectors = self._run_round(
                    state, round_index, ws, source, totals, detector_history,
                    pattern_histogram, detector_out,
                )
                round_records.append(record)
                yield round_index, z_detectors

            source.start_final()
            final_tick = time.perf_counter_ns() if tracer is not None else 0
            final_detectors, observable_flips = self._final_readout(state, ws, source)
            if tracer is not None:
                now = time.perf_counter_ns()
                tracer.complete_ns("sim.final_readout", final_tick, now)
                tracer.complete_ns(
                    "sim.run", run_start_ns, now,
                    {"code": code.name, "shots": shots, "rounds": rounds},
                )
        finally:
            source.close()
            ws.release()

        return RunResult(
            code_name=code.name,
            policy_name=self.policy.describe(),
            shots=shots,
            rounds=rounds,
            noise=noise,
            round_records=round_records,
            total_data_lrcs=totals["lrc"],
            total_ancilla_lrcs=totals["anc_lrc"],
            total_false_positives=totals["fp"],
            total_false_negatives=totals["fn"],
            total_true_positives=totals["tp"],
            total_leakage_events=totals["leak_events"],
            final_data_leaked=state.data_leaked.copy(),
            detector_history=detector_history,
            final_detectors=final_detectors,
            observable_flips=observable_flips,
            pattern_histogram=pattern_histogram,
        )

    # ------------------------------------------------------------------ #
    # One QEC round (workspace-resident, allocation-free)
    # ------------------------------------------------------------------ #
    def _run_round(
        self,
        state: SimState,
        round_index: int,
        ws: RoundWorkspace,
        source,
        totals: dict[str, int],
        detector_history: np.ndarray | None,
        pattern_histogram: dict[int, dict[int, tuple[int, int]]],
        detector_out: np.ndarray | None = None,
    ) -> tuple[RoundRecord, np.ndarray]:
        # Time-structured presets swap in this round's effective parameters;
        # the schedule preserves zero-ness, so the conditional draws consumed
        # below stay aligned with the per-round plan body.
        noise = self.noise.params_for_round(round_index)
        shots = state.shots
        tracer = self._round_tracer
        instrument = self._phase_ns is not None or tracer is not None
        tick = time.perf_counter_ns() if instrument else 0
        round_start_ns = tick

        # 1. Apply the LRCs scheduled by last round's decision.  ``ws.data_lrc``
        #    / ``ws.anc_lrc`` still hold that decision; they are fully consumed
        #    here, freeing the buffers for this round's decision in phase 6.
        #    The two any-flags gate the conditional draw segments — posting
        #    them first lets the prefetch worker start on this round.
        lrcs_this_round = int(np.count_nonzero(ws.data_lrc))
        anc_lrcs_this_round = int(np.count_nonzero(ws.anc_lrc))
        source.start_round(bool(lrcs_this_round), bool(anc_lrcs_this_round))
        totals["lrc"] += lrcs_this_round
        totals["anc_lrc"] += anc_lrcs_this_round
        if lrcs_this_round:
            self._apply_lrc(
                ws.data_lrc, state.data_leaked, state.data_x, state.data_z,
                ws.data, source, totals, return_flips=True,
            )
        if anc_lrcs_this_round:
            self._apply_lrc(
                ws.anc_lrc, state.anc_leaked, state.anc_x, state.anc_z,
                ws.anc, source, totals, return_flips=False,
            )

        # 2. Start-of-round data noise: depolarisation plus environment leakage.
        state.depolarize_data(noise.p, source=source, scratch=ws.data)
        totals["leak_events"] += state.inject_data_leakage(
            noise.p_leak, source=source, scratch=ws.data
        )

        # 3. Ancilla reset (clears most parity-qubit leakage; data-qubit
        #    leakage has no such escape hatch).
        state.reset_ancillas(
            noise.p,
            leakage_removal_probability=noise.ancilla_reset_removes_leakage,
            source=source,
            scratch=ws.anc,
        )
        totals["leak_events"] += state.inject_ancilla_leakage(
            noise.p_leak, source=source, scratch=ws.anc
        )
        if instrument:
            tick = self._phase_mark("noise", tick, round_index)

        # 4. Entangling layers, executed on packed uint8 planes
        #    (x | z<<1 | leaked<<2): one gather/scatter per register per
        #    layer instead of six.  The boolean state is repacked before and
        #    unpacked after, so every other phase sees plain bool arrays.
        _pack_register(ws.data_pack, state.data_x, state.data_z, state.data_leaked, ws.data_u8)
        _pack_register(ws.anc_pack, state.anc_x, state.anc_z, state.anc_leaked, ws.anc_u8)
        for layer_index in range(len(self._slot_anc)):
            totals["leak_events"] += self._apply_cnot_layer(layer_index, ws, source)
        _unpack_register(ws.data_pack, state.data_x, state.data_z, state.data_leaked, ws.data_u8)
        _unpack_register(ws.anc_pack, state.anc_x, state.anc_z, state.anc_leaked, ws.anc_u8)
        if instrument:
            tick = self._phase_mark("cnot_layers", tick, round_index)

        # 5. Measurement, MLR, detectors.
        self._measure(state, ws, source)
        np.logical_xor(ws.measurement, state.prev_measurement, out=ws.detectors)
        if round_index == 0:
            # X-stabilizer outcomes are intrinsically random in the first
            # round of a memory-Z experiment; their first detector is defined
            # only from round 1 onwards.
            ws.detectors[:, self._x_stab_indices] = False
        # Reference-swap instead of copying: ``prev_measurement`` now points
        # at this round's outcomes, and the retired buffer becomes next
        # round's measurement landing zone.
        state.prev_measurement, ws.measurement = ws.measurement, state.prev_measurement
        if detector_out is not None:
            # Zero-copy streaming: refill the caller's chunk buffer in place
            # (np.take with out= writes the gathered columns directly).
            z_detectors = np.take(
                ws.detectors, self._z_stab_indices, axis=1, out=detector_out
            )
        else:
            z_detectors = ws.detectors[:, self._z_stab_indices]
        if detector_history is not None:
            detector_history[:, round_index, :] = z_detectors
        if instrument:
            tick = self._phase_mark("measure", tick, round_index)

        # 6. Speculation.  ``pattern_a`` receives this round's patterns while
        #    ``pattern_b`` still holds the previous round's (two-round
        #    policies read both); the buffers swap at the end of the round.
        self._extract_patterns(ws.detectors, ws.pattern_a, ws)
        if ws.mlr_flags is not None and ws.mlr_neighbor is not None:
            self._mlr_neighbor(ws.mlr_flags, ws.mlr_neighbor, ws)
        ctx = SpeculationInput(
            round_index=round_index,
            pattern_ints=ws.pattern_a,
            prev_pattern_ints=ws.pattern_b,
            detectors=ws.detectors,
            mlr_flags=ws.mlr_flags,
            mlr_neighbor=ws.mlr_neighbor,
            data_leaked=state.data_leaked,
        )
        self.policy.decide_into(
            ctx, ws.data_lrc, ws.anc_lrc if ws.emits_ancilla_lrc else None
        )
        if instrument:
            tick = self._phase_mark("speculate", tick, round_index)

        # 7. Accuracy accounting at decision time.
        data = ws.data
        lrc_u8 = ws.data_lrc.view(np.uint8)
        leaked_u8 = state.data_leaked.view(np.uint8)
        np.bitwise_xor(leaked_u8, 1, out=data.t1)
        np.bitwise_and(lrc_u8, data.t1, out=data.t2)
        false_positives = int(np.count_nonzero(data.t2))
        np.bitwise_xor(lrc_u8, 1, out=data.t1)
        np.bitwise_and(leaked_u8, data.t1, out=data.t2)
        false_negatives = int(np.count_nonzero(data.t2))
        np.bitwise_and(lrc_u8, leaked_u8, out=data.t2)
        true_positives = int(np.count_nonzero(data.t2))
        totals["fp"] += false_positives
        totals["fn"] += false_negatives
        totals["tp"] += true_positives

        if self.options.record_patterns:
            self._record_patterns(ws.pattern_a, state.data_leaked, pattern_histogram)

        record = RoundRecord(
            round_index=round_index,
            data_leakage_population=state.leaked_fraction(),
            ancilla_leakage_population=float(state.anc_leaked.mean()),
            lrcs_applied=lrcs_this_round / shots,
            false_positives=false_positives / shots,
            false_negatives=false_negatives / shots,
            true_positives=true_positives / shots,
        )
        ws.pattern_a, ws.pattern_b = ws.pattern_b, ws.pattern_a
        if instrument:
            tick = self._phase_mark("bookkeeping", tick, round_index)
            if tracer is not None:
                tracer.complete_ns(
                    "sim.round", round_start_ns, tick,
                    {"round": round_index, "lrcs": lrcs_this_round},
                )
        return record, z_detectors

    # ------------------------------------------------------------------ #
    # Physical processes
    # ------------------------------------------------------------------ #
    def _apply_lrc(
        self,
        mask: np.ndarray,
        leaked: np.ndarray,
        frame_x: np.ndarray,
        frame_z: np.ndarray,
        scratch: ChannelScratch,
        source,
        totals: dict[str, int],
        return_flips: bool,
    ) -> None:
        """Apply LRC gadgets to the masked qubits of one register, in place.

        Draw order (removal, [X-flip, Z-flip for data qubits], gate hit,
        Pauli choice, induced leakage) is the frozen RNG contract; the caller
        gates the whole block on the baseline's ``mask.any()`` condition (via
        the round's LRC flag), so the draw sequence stays identical.
        """
        t1, t2 = scratch.t1, scratch.t2
        mask_u8 = mask.view(np.uint8)
        leaked_u8 = leaked.view(np.uint8)
        x_u8 = frame_x.view(np.uint8)
        z_u8 = frame_z.view(np.uint8)
        # removed = mask & leaked & (U < removal_prob)
        removal = source.next()
        np.bitwise_and(mask_u8, leaked_u8, out=t1)
        t1 &= removal
        source.release(removal)
        leaked_u8 ^= t1  # removed is a subset of leaked
        if return_flips:
            # A returned data qubit re-enters the computational subspace in a
            # random state: model as a 50/50 X flip plus full dephasing.
            # (Ancillas are reset right afterwards; the baseline never drew
            # these for them.)
            flip = source.next()
            np.bitwise_and(flip, t1, out=t2)
            source.release(flip)
            x_u8 ^= t2
            flip = source.next()
            np.bitwise_and(flip, t1, out=t2)
            source.release(flip)
            z_u8 ^= t2
        # Gadget noise on every treated qubit (leaked or not).
        hit = source.next()
        np.bitwise_and(hit, mask_u8, out=t2)
        source.release(hit)
        pauli = source.next()
        np.not_equal(pauli, 2, out=t1)
        t1 &= t2
        x_u8 ^= t1
        np.not_equal(pauli, 0, out=t1)
        t1 &= t2
        z_u8 ^= t1
        source.release(pauli)
        # Gadget-induced leakage.
        induced = source.next()
        np.bitwise_and(induced, mask_u8, out=t1)
        source.release(induced)
        np.bitwise_xor(leaked_u8, 1, out=t2)
        t1 &= t2  # new leaks
        leaked_u8 |= t1
        totals["leak_events"] += int(np.count_nonzero(t1))

    #: Shot rows per tile of the layer kernel: ~20 uint8 buffers of
    #: ``rows * gates`` bytes must stay L2-resident while the op sequence
    #: sweeps over them.
    _LAYER_TILE_ROWS = 2048

    def _apply_cnot_layer(self, layer_index: int, ws: RoundWorkspace, source) -> int:
        """Execute one entangling layer on the packed planes; return new leaks.

        All masks are uint8 0/1 so the whole layer is bitwise arithmetic on
        byte arrays.  The Bernoulli masks arrive pre-thresholded from the
        draw source in their baseline order and shapes (the frozen RNG
        contract); they are pulled up front so the ~40-op algebra can then
        run *tiled over shot blocks*, keeping every operand in cache instead
        of streaming full ``(shots, gates)`` arrays through memory once per
        op.  Tiling is pure loop blocking — the computation per element is
        unchanged.
        """
        lw = ws.layers[layer_index]
        if lw is None:
            return 0
        anc_idx = self._slot_anc[layer_index]
        data_idx = self._slot_data[layer_index]
        is_z_full = ws.layer_is_z_full[layer_index]
        assert is_z_full is not None  # allocated for every non-empty layer

        # NB: ``pack[:, idx]`` yields a transposed-layout copy (advanced
        # indexing iterates the index axis first); the C kernel needs C-order.
        if self._use_ckernels:
            pd = ws.data_pack.take(data_idx, axis=1)
            pa = ws.anc_pack.take(anc_idx, axis=1)
        else:
            pd = ws.data_pack[:, data_idx]
            pa = ws.anc_pack[:, anc_idx]
        # The layer's full draw schedule, in stream order.
        transport = source.next()
        rand_x = source.next()
        rand_z = source.next()
        rand_x2 = source.next()
        rand_z2 = source.next()
        gate_hit = source.next()
        pauli_pair = source.next()  # uint8 1..15
        data_gate_leak = source.next()
        anc_gate_leak = source.next()
        masks = (
            transport, rand_x, rand_z, rand_x2, rand_z2,
            gate_hit, pauli_pair, data_gate_leak, anc_gate_leak,
        )

        if self._use_ckernels:
            # One fused C pass over all operands (identical per-element
            # semantics to the tiled NumPy loop below).
            _ckernels.cnot_layer(pd, pa, is_z_full, masks, ws.layer_counts)
            for mask in masks:
                source.release(mask)
            ws.data_pack[:, data_idx] = pd
            ws.anc_pack[:, anc_idx] = pa
            return int(ws.layer_counts[0]) + int(ws.layer_counts[1])

        shots = pd.shape[0]
        tile = self._LAYER_TILE_ROWS
        # Hoist the ufuncs: with every operand pre-sliced per tile the loop
        # body is pure C dispatch, ~5 us per op on L2-resident tiles.
        band, bxor, bor = np.bitwise_and, np.bitwise_xor, np.bitwise_or
        rshift, lshift, add, mul = np.right_shift, np.left_shift, np.add, np.multiply
        for start in range(0, shots, tile):
            s = slice(start, min(start + tile, shots))
            cpd, cpa = pd[s], pa[s]
            ld, la = lw.ld[s], lw.la[s]
            hz, hnz = lw.hz[s], lw.hnz[s]
            t = lw.t[s]
            m1, m2, m4, m5 = lw.m1[s], lw.m2[s], lw.m4[s], lw.m5[s]
            tr, rx, rz = transport[s], rand_x[s], rand_z[s]
            rx2, rz2 = rand_x2[s], rand_z2[s]
            gh, pp = gate_hit[s], pauli_pair[s]
            dgl, agl = data_gate_leak[s], anc_gate_leak[s]

            rshift(cpd, 2, out=ld)  # original leak flags (3-bit packs)
            rshift(cpa, 2, out=la)
            bor(ld, la, out=t)
            bxor(t, 1, out=t)  # healthy
            band(t, is_z_full[s], out=hz)  # healthy Z-type columns
            bxor(t, hz, out=hnz)  # healthy X-type columns

            # Ideal CNOT propagation where both operands are in the
            # computational subspace.  Z-type checks: control = data,
            # target = ancilla; X-type checks: control = ancilla, target =
            # data.  The four updates run in place because each reads plane
            # bits only at columns the earlier updates did not touch (Z- and
            # X-type columns are disjoint); ANDing with the 0/1 masks both
            # selects the X bit and strips any higher pack bits.
            band(cpd, hz, out=t)  # data_x & healthy & Z-type
            bxor(cpa, t, out=cpa)
            rshift(cpa, 1, out=t)  # anc_z (| leak bit, stripped by hz)
            band(t, hz, out=t)
            add(t, t, out=t)
            bxor(cpd, t, out=cpd)
            band(cpa, hnz, out=t)  # anc_x & healthy & X-type
            bxor(cpd, t, out=cpd)
            rshift(cpd, 1, out=t)  # data_z (| leak bit, stripped by hnz)
            band(t, hnz, out=t)
            add(t, t, out=t)
            bxor(cpa, t, out=cpa)

            # Leaked-operand malfunction: the healthy partner either inherits
            # the leakage (probability = mobility) or picks up a random Pauli.
            bxor(la, 1, out=t)
            band(ld, t, out=m1)  # data_only
            bxor(ld, 1, out=t)
            band(la, t, out=m2)  # anc_only
            band(m1, tr, out=m4)  # anc_gets_leak
            band(m2, tr, out=m5)  # data_gets_leak
            bxor(tr, 1, out=t)
            band(m1, t, out=m1)  # scramble_anc
            band(m2, t, out=m2)  # scramble_data
            band(m1, rx, out=t)
            bxor(cpa, t, out=cpa)
            band(m1, rz, out=t)
            add(t, t, out=t)
            bxor(cpa, t, out=cpa)
            band(m2, rx2, out=t)
            bxor(cpd, t, out=cpd)
            band(m2, rz2, out=t)
            add(t, t, out=t)
            bxor(cpd, t, out=cpd)

            # Two-qubit depolarising gate error: the low Pauli-pair bits land
            # on the data plane, the high bits on the ancilla plane — two
            # bitwise ANDs per register instead of one op per plane bit.
            mul(gh, 3, out=m1)  # hit mask over both plane bits
            band(pp, 3, out=t)
            band(t, m1, out=t)
            bxor(cpd, t, out=cpd)
            rshift(pp, 2, out=t)
            band(t, m1, out=t)
            bxor(cpa, t, out=cpa)

            # Gate-induced leakage on both operands.
            bor(m5, dgl, out=m5)
            bxor(ld, 1, out=t)
            band(m5, t, out=m5)  # new data leaks
            bor(m4, agl, out=m4)
            bxor(la, 1, out=t)
            band(m4, t, out=m4)  # new ancilla leaks
            lshift(m5, 2, out=t)
            bor(cpd, t, out=cpd)
            lshift(m4, 2, out=t)
            bor(cpa, t, out=cpa)

        for mask in masks:
            source.release(mask)

        # Write the packed planes back.
        ws.data_pack[:, data_idx] = pd
        ws.anc_pack[:, anc_idx] = pa
        return int(np.count_nonzero(lw.m5)) + int(np.count_nonzero(lw.m4))

    def _measure(self, state: SimState, ws: RoundWorkspace, source) -> None:
        """Measure every ancilla into ``ws.measurement`` (+ MLR flags)."""
        noise = self.noise
        meas = ws.measurement
        t1 = ws.anc.t1
        # Select the measured plane per ancilla straight from the packed
        # representation: bit 0 for Z-type checks, bit 1 for X-type.
        meas_u8 = meas.view(np.uint8)
        np.right_shift(ws.anc_pack, self._measure_shift_row, out=meas_u8)
        meas_u8 &= 1
        flip = source.next()
        meas_u8 ^= flip
        source.release(flip)
        leaked_u8 = state.anc_leaked.view(np.uint8)
        if noise.readout_leak_random:
            random_bits = source.next()
            np.copyto(meas_u8, random_bits, where=state.anc_leaked)
            source.release(random_bits)
        else:
            meas_u8 |= leaked_u8

        if self.policy.uses_mlr:
            assert ws.mlr_flags is not None
            mlr_u8 = ws.mlr_flags.view(np.uint8)
            missed = source.next()
            false_flag = source.next()
            np.bitwise_xor(missed, 1, out=t1)
            source.release(missed)
            np.bitwise_and(leaked_u8, t1, out=mlr_u8)
            np.bitwise_xor(leaked_u8, 1, out=t1)
            t1 &= false_flag
            source.release(false_flag)
            mlr_u8 |= t1
            # MLR-triggered resets return correctly flagged ancillas to the
            # computational subspace before the next round.
            np.bitwise_xor(mlr_u8, 1, out=t1)
            leaked_u8 &= t1

    # ------------------------------------------------------------------ #
    # Pattern extraction and bookkeeping
    # ------------------------------------------------------------------ #
    def _extract_patterns(
        self, detectors: np.ndarray, out: np.ndarray, ws: RoundWorkspace
    ) -> None:
        """Pack each data qubit's adjacent detector flips into ``out``.

        Runs as float32 GEMMs (see :meth:`_build_gather_structures`): a
        member-count matmul, an OR threshold, and a position-weight matmul —
        no per-group Python loop, no int64 scatter traffic.  The float
        results are small exact integers, so the final cast is lossless.
        """
        np.copyto(ws.det_f32, detectors, casting="unsafe")
        if self._pattern_single_member:
            assert self._pattern_matrix is not None
            np.matmul(ws.det_f32, self._pattern_matrix, out=ws.pat_f32)
        else:
            assert self._pattern_members is not None
            assert self._pattern_weights is not None and ws.counts_f32 is not None
            np.matmul(ws.det_f32, self._pattern_members, out=ws.counts_f32)
            np.not_equal(ws.counts_f32, 0, out=ws.counts_f32)
            np.matmul(ws.counts_f32, self._pattern_weights, out=ws.pat_f32)
        np.copyto(out, ws.pat_f32, casting="unsafe")

    def _mlr_neighbor(
        self, mlr_flags: np.ndarray, out: np.ndarray, ws: RoundWorkspace
    ) -> None:
        """OR of the MLR flags of each data qubit's adjacent ancillas."""
        for qubits, ancilla_rows in self._neighbor_gather:
            flags = mlr_flags[:, ancilla_rows[:, 0]]
            for column in range(1, ancilla_rows.shape[1]):
                flags |= mlr_flags[:, ancilla_rows[:, column]]
            out[:, qubits] = flags

    def _record_patterns(
        self,
        pattern_ints: np.ndarray,
        data_leaked: np.ndarray,
        histogram: dict[int, dict[int, tuple[int, int]]],
    ) -> None:
        """Accumulate per-width pattern counts split by true leakage status.

        One ``np.bincount`` over ``value * 2 + leaked`` replaces the
        baseline's Python loop over all ``2**width`` values (each of which
        scanned the whole batch); the resulting histogram is identical,
        including explicit zero entries for unobserved patterns.
        """
        for width, qubits in self._width_groups:
            values = pattern_ints[:, qubits].ravel()
            leaked = data_leaked[:, qubits].ravel()
            counts = np.bincount(values * 2 + leaked, minlength=2 << width)
            width_hist = histogram.setdefault(width, {})
            for value in range(1 << width):
                leaked_count = int(counts[2 * value + 1])
                clean_count = int(counts[2 * value])
                if value in width_hist:
                    old_leaked, old_clean = width_hist[value]
                    width_hist[value] = (old_leaked + leaked_count, old_clean + clean_count)
                else:
                    width_hist[value] = (leaked_count, clean_count)

    # ------------------------------------------------------------------ #
    # Final readout
    # ------------------------------------------------------------------ #
    def _final_readout(
        self, state: SimState, ws: RoundWorkspace, source
    ) -> tuple[np.ndarray, np.ndarray]:
        """Transversal data readout: final detectors and the logical observable."""
        noise = self.noise
        flip = source.next()
        data_meas = np.bitwise_xor(state.data_x.view(np.uint8), flip)
        source.release(flip)
        if noise.readout_leak_random:
            random_bits = source.next()
            np.copyto(data_meas, random_bits, where=state.data_leaked)
            source.release(random_bits)
        else:
            data_meas |= state.data_leaked.view(np.uint8)
        # Final-round detectors: parity of the measured data over each
        # Z-stabilizer support, compared against that stabilizer's last
        # in-circuit measurement.  ``data_meas`` is already the 0/1 uint8 the
        # matmul wants.
        z_parity = (data_meas @ self._z_support_t_u8) % 2
        last_z = state.prev_measurement[:, self._z_stab_indices]
        final_detectors = z_parity.astype(bool) ^ last_z
        observable = (
            data_meas[:, self._logical_z_support].sum(axis=1) % 2
        ).astype(bool)
        return final_detectors, observable
