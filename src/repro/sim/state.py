"""Pauli-frame plus leakage-flag state for batched circuit simulation.

The simulator tracks, for every shot in a batch, the X and Z components of
the Pauli frame on each data and ancilla qubit plus a per-qubit boolean
"leaked" flag.  Circuit-level Pauli noise is exact in this representation;
leakage is tracked classically, exactly as in the ERASER/GLADIATOR artifacts
(leaked qubits stop participating in normal gate action and instead
randomise their partners), which is the behavioural model calibrated on IBM
hardware in Section 2.3 of the paper.

Every noise channel comes in two bit-identical flavours:

* the historical allocating path (``rng=...``): fresh arrays per draw,
  kept as the plain-NumPy reference semantics;
* an in-place path (``source=...``, ``scratch=...``) that consumes
  pre-thresholded uint8 masks from a :mod:`repro.sim.draws` source and
  applies them with bitwise kernels on uint8 views of the bool planes
  (bool arrays are byte-backed 0/1, so the views are free).

Both consume the same RNG values in the same order — the in-place path only
changes *where* draws land and *who* generates them, never *what* is drawn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ChannelScratch", "SimState"]


@dataclass
class ChannelScratch:
    """Two reusable uint8 mask temporaries for one register's channels."""

    t1: np.ndarray  # uint8 (shots, n)
    t2: np.ndarray  # uint8 (shots, n)

    @classmethod
    def allocate(cls, shots: int, n: int) -> "ChannelScratch":
        """Allocate scratch for an ``n``-qubit register of ``shots`` shots."""
        return cls(
            t1=np.empty((shots, n), dtype=np.uint8),
            t2=np.empty((shots, n), dtype=np.uint8),
        )


@dataclass
class SimState:
    """Batched Pauli-frame + leakage state.

    All arrays have shape ``(shots, num_data)`` or ``(shots, num_ancilla)``
    and dtype ``bool``.
    """

    shots: int
    num_data: int
    num_ancilla: int
    data_x: np.ndarray = field(init=False)
    data_z: np.ndarray = field(init=False)
    data_leaked: np.ndarray = field(init=False)
    anc_x: np.ndarray = field(init=False)
    anc_z: np.ndarray = field(init=False)
    anc_leaked: np.ndarray = field(init=False)
    prev_measurement: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.data_x = np.zeros((self.shots, self.num_data), dtype=bool)
        self.data_z = np.zeros((self.shots, self.num_data), dtype=bool)
        self.data_leaked = np.zeros((self.shots, self.num_data), dtype=bool)
        self.anc_x = np.zeros((self.shots, self.num_ancilla), dtype=bool)
        self.anc_z = np.zeros((self.shots, self.num_ancilla), dtype=bool)
        self.anc_leaked = np.zeros((self.shots, self.num_ancilla), dtype=bool)
        self.prev_measurement = np.zeros((self.shots, self.num_ancilla), dtype=bool)

    # ------------------------------------------------------------------ #
    # Noise channels (vectorised over shots and qubits)
    # ------------------------------------------------------------------ #
    def depolarize_data(
        self,
        probability: float,
        rng: np.random.Generator | None = None,
        source=None,
        scratch: ChannelScratch | None = None,
    ) -> None:
        """Apply single-qubit depolarising noise to every data qubit."""
        if probability <= 0:
            return
        if source is None:
            assert rng is not None
            hit = rng.random(self.data_x.shape) < probability
            # Choose uniformly among X, Y, Z when the channel fires.
            pauli = rng.integers(0, 3, size=self.data_x.shape)
            self.data_x ^= hit & (pauli != 2)  # X or Y flips the X frame
            self.data_z ^= hit & (pauli != 0)  # Y or Z flips the Z frame
            return
        assert scratch is not None
        hit = source.next()
        pauli = source.next()
        np.not_equal(pauli, 2, out=scratch.t1)
        scratch.t1 &= hit
        self.data_x.view(np.uint8)[...] ^= scratch.t1
        np.not_equal(pauli, 0, out=scratch.t1)
        scratch.t1 &= hit
        self.data_z.view(np.uint8)[...] ^= scratch.t1
        source.release(hit)
        source.release(pauli)

    def inject_data_leakage(
        self,
        probability: float,
        rng: np.random.Generator | None = None,
        source=None,
        scratch: ChannelScratch | None = None,
    ) -> np.ndarray | int:
        """Leak data qubits independently with ``probability``.

        The allocating path returns the new-leak mask (baseline semantics);
        the source path applies it in place and returns the event count.
        """
        return self._inject_leakage(self.data_leaked, probability, rng, source, scratch)

    def inject_ancilla_leakage(
        self,
        probability: float,
        rng: np.random.Generator | None = None,
        source=None,
        scratch: ChannelScratch | None = None,
    ) -> np.ndarray | int:
        """Leak ancilla qubits independently with ``probability``."""
        return self._inject_leakage(self.anc_leaked, probability, rng, source, scratch)

    def _inject_leakage(
        self,
        leaked: np.ndarray,
        probability: float,
        rng: np.random.Generator | None,
        source,
        scratch: ChannelScratch | None,
    ) -> np.ndarray | int:
        if probability <= 0:
            return 0 if source is not None else np.zeros_like(leaked)
        if source is None:
            assert rng is not None
            new_leak = (rng.random(leaked.shape) < probability) & ~leaked
            leaked |= new_leak
            return new_leak
        assert scratch is not None
        mask = source.next()
        leaked_u8 = leaked.view(np.uint8)
        np.bitwise_xor(leaked_u8, 1, out=scratch.t1)
        np.bitwise_and(mask, scratch.t1, out=scratch.t2)  # new leaks
        source.release(mask)
        leaked_u8 |= scratch.t2
        return int(np.count_nonzero(scratch.t2))

    def reset_ancillas(
        self,
        flip_probability: float,
        rng: np.random.Generator | None = None,
        leakage_removal_probability: float = 1.0,
        source=None,
        scratch: ChannelScratch | None = None,
    ) -> None:
        """Reset every ancilla frame; imperfect resets start with a Pauli flip.

        ``leakage_removal_probability`` controls how often the measure-and-
        reset also returns a leaked parity qubit to the computational
        subspace (parity qubits are measured every round, so by default
        their leakage survives at most one round).
        """
        self.anc_x[:] = False
        self.anc_z[:] = False
        if source is None:
            assert rng is not None
            if flip_probability > 0:
                self.anc_x ^= rng.random(self.anc_x.shape) < flip_probability
                self.anc_z ^= rng.random(self.anc_z.shape) < flip_probability
            if leakage_removal_probability > 0:
                cleared = self.anc_leaked & (
                    rng.random(self.anc_leaked.shape) < leakage_removal_probability
                )
                self.anc_leaked &= ~cleared
            return
        assert scratch is not None
        if flip_probability > 0:
            mask = source.next()
            self.anc_x.view(np.uint8)[...] ^= mask
            source.release(mask)
            mask = source.next()
            self.anc_z.view(np.uint8)[...] ^= mask
            source.release(mask)
        if leakage_removal_probability > 0:
            mask = source.next()
            leaked_u8 = self.anc_leaked.view(np.uint8)
            np.bitwise_and(mask, leaked_u8, out=scratch.t1)  # cleared
            source.release(mask)
            leaked_u8 ^= scratch.t1  # cleared is a subset of leaked

    def leaked_fraction(self) -> float:
        """Fraction of data qubits currently leaked, averaged over shots."""
        return float(self.data_leaked.mean())

    def leaked_counts(self) -> np.ndarray:
        """Per-shot count of currently leaked data qubits."""
        return self.data_leaked.sum(axis=1)
