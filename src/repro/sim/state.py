"""Pauli-frame plus leakage-flag state for batched circuit simulation.

The simulator tracks, for every shot in a batch, the X and Z components of
the Pauli frame on each data and ancilla qubit plus a per-qubit boolean
"leaked" flag.  Circuit-level Pauli noise is exact in this representation;
leakage is tracked classically, exactly as in the ERASER/GLADIATOR artifacts
(leaked qubits stop participating in normal gate action and instead
randomise their partners), which is the behavioural model calibrated on IBM
hardware in Section 2.3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SimState"]


@dataclass
class SimState:
    """Batched Pauli-frame + leakage state.

    All arrays have shape ``(shots, num_data)`` or ``(shots, num_ancilla)``
    and dtype ``bool``.
    """

    shots: int
    num_data: int
    num_ancilla: int
    data_x: np.ndarray = field(init=False)
    data_z: np.ndarray = field(init=False)
    data_leaked: np.ndarray = field(init=False)
    anc_x: np.ndarray = field(init=False)
    anc_z: np.ndarray = field(init=False)
    anc_leaked: np.ndarray = field(init=False)
    prev_measurement: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.data_x = np.zeros((self.shots, self.num_data), dtype=bool)
        self.data_z = np.zeros((self.shots, self.num_data), dtype=bool)
        self.data_leaked = np.zeros((self.shots, self.num_data), dtype=bool)
        self.anc_x = np.zeros((self.shots, self.num_ancilla), dtype=bool)
        self.anc_z = np.zeros((self.shots, self.num_ancilla), dtype=bool)
        self.anc_leaked = np.zeros((self.shots, self.num_ancilla), dtype=bool)
        self.prev_measurement = np.zeros((self.shots, self.num_ancilla), dtype=bool)

    # ------------------------------------------------------------------ #
    # Noise channels (vectorised over shots and qubits)
    # ------------------------------------------------------------------ #
    def depolarize_data(self, probability: float, rng: np.random.Generator) -> None:
        """Apply single-qubit depolarising noise to every data qubit."""
        if probability <= 0:
            return
        hit = rng.random(self.data_x.shape) < probability
        # Choose uniformly among X, Y, Z when the channel fires.
        pauli = rng.integers(0, 3, size=self.data_x.shape)
        self.data_x ^= hit & (pauli != 2)  # X or Y flips the X frame
        self.data_z ^= hit & (pauli != 0)  # Y or Z flips the Z frame

    def inject_data_leakage(self, probability: float, rng: np.random.Generator) -> np.ndarray:
        """Leak data qubits independently with ``probability``; return new-leak mask."""
        if probability <= 0:
            return np.zeros_like(self.data_leaked)
        new_leak = (rng.random(self.data_leaked.shape) < probability) & ~self.data_leaked
        self.data_leaked |= new_leak
        return new_leak

    def inject_ancilla_leakage(self, probability: float, rng: np.random.Generator) -> np.ndarray:
        """Leak ancilla qubits independently with ``probability``; return new-leak mask."""
        if probability <= 0:
            return np.zeros_like(self.anc_leaked)
        new_leak = (rng.random(self.anc_leaked.shape) < probability) & ~self.anc_leaked
        self.anc_leaked |= new_leak
        return new_leak

    def reset_ancillas(
        self,
        flip_probability: float,
        rng: np.random.Generator,
        leakage_removal_probability: float = 1.0,
    ) -> None:
        """Reset every ancilla frame; imperfect resets start with a Pauli flip.

        ``leakage_removal_probability`` controls how often the measure-and-
        reset also returns a leaked parity qubit to the computational
        subspace (parity qubits are measured every round, so by default
        their leakage survives at most one round).
        """
        self.anc_x[:] = False
        self.anc_z[:] = False
        if flip_probability > 0:
            self.anc_x ^= rng.random(self.anc_x.shape) < flip_probability
            self.anc_z ^= rng.random(self.anc_z.shape) < flip_probability
        if leakage_removal_probability > 0:
            cleared = self.anc_leaked & (
                rng.random(self.anc_leaked.shape) < leakage_removal_probability
            )
            self.anc_leaked &= ~cleared

    def leaked_fraction(self) -> float:
        """Fraction of data qubits currently leaked, averaged over shots."""
        return float(self.data_leaked.mean())

    def leaked_counts(self) -> np.ndarray:
        """Per-shot count of currently leaked data qubits."""
        return self.data_leaked.sum(axis=1)
