"""Optional runtime-compiled C kernels for the simulator hot path.

Two loops dominate the simulator once the NumPy-level waste is gone, and
both are awkward for NumPy itself:

* **Bernoulli mask generation.**  ``Generator.random(out=...)`` has to
  materialise 8 bytes of float64 per variate that the simulator immediately
  collapses to one 0/1 byte via ``np.less``.  ``pcg64_bern`` runs the same
  PCG64 (XSL-RR 128/64) step stream in C and fuses the threshold compare,
  writing only the uint8 mask: for ``u ~ U[0,1) = (raw >> 11) * 2**-53``,
  ``u < p``  ⟺  ``raw < ceil(p * 2**53) << 11`` exactly, so the masks are
  bit-identical to the NumPy path.  The caller passes the bit generator's
  128-bit state in/out and keeps ``numpy``'s ``Generator`` authoritative
  between C segments (see ``repro.sim.draws``).
* **The entangling-layer algebra.**  ~50 elementwise uint8 ops per layer
  stream every operand through memory once per op under NumPy;
  ``cnot_layer`` performs the identical per-element computation in one pass.

Both kernels are compiled on demand with the system C compiler into a
cached shared library; when no compiler is available everything falls back
to the pure-NumPy implementations (results are identical either way —
``tests/test_sim_equivalence.py`` pins both modes).  Set
``REPRO_SIM_CKERNELS=0`` to force the fallback.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile

import numpy as np

__all__ = ["available", "pcg64_bern", "cnot_layer"]

_SOURCE = r"""
#include <stdint.h>

typedef unsigned __int128 u128;
#define MULT ((((u128)0x2360ed051fc65da4ULL) << 64) | (u128)0x4385df649fccf645ULL)

static inline uint64_t out_xsl_rr(u128 state) {
    uint64_t hi = (uint64_t)(state >> 64), lo = (uint64_t)state;
    uint64_t x = hi ^ lo;
    unsigned rot = (unsigned)(state >> 122);
    return (x >> rot) | (x << ((-rot) & 63u));
}

/* PCG64 (XSL-RR 128/64) Bernoulli masks: out[i] = (U[0,1) < p), where the
 * uniform stream is numpy's own (one raw u64 per double, value < p decided
 * on the raw integer).  state/inc are (high, low) u64 pairs; state is
 * updated in place so the caller can resync numpy's Generator. */
void pcg64_bern(uint64_t* st, const uint64_t* inc, uint64_t threshold,
                int64_t n, uint8_t* out) {
    u128 state = (((u128)st[0]) << 64) | st[1];
    u128 incr  = (((u128)inc[0]) << 64) | inc[1];
    for (int64_t i = 0; i < n; i++) {
        state = state * MULT + incr;
        out[i] = out_xsl_rr(state) < threshold;
    }
    st[0] = (uint64_t)(state >> 64);
    st[1] = (uint64_t)state;
}

/* One entangling layer on packed planes (x | z<<1 | leaked<<2), the exact
 * per-element semantics of the NumPy tile kernel in sim/simulator.py.
 * counts[0]/counts[1] receive the new data/ancilla leak event counts. */
void cnot_layer(uint8_t* pd, uint8_t* pa, const uint8_t* isz,
                const uint8_t* tr, const uint8_t* rx, const uint8_t* rz,
                const uint8_t* rx2, const uint8_t* rz2,
                const uint8_t* gh, const uint8_t* pp,
                const uint8_t* dgl, const uint8_t* agl,
                int64_t n, int64_t* counts) {
    int64_t new_data = 0, new_anc = 0;
    for (int64_t i = 0; i < n; i++) {
        uint8_t d = pd[i], a = pa[i];
        uint8_t ld = d >> 2, la = a >> 2;
        uint8_t h = (uint8_t)((ld | la) ^ 1u);
        uint8_t hz = h & isz[i], hnz = h ^ hz;
        uint8_t t;
        /* ideal CNOT propagation (Z-type: data controls ancilla X / ancilla
         * feeds data Z; X-type: the mirror), healthy columns only */
        t = d & hz;               a ^= t;
        t = (a >> 1) & hz;        d ^= (uint8_t)(t << 1);
        t = a & hnz;              d ^= t;
        t = (d >> 1) & hnz;       a ^= (uint8_t)(t << 1);
        /* leaked-operand malfunction: transport or scramble */
        uint8_t m1 = (uint8_t)(ld & (la ^ 1u));  /* data_only */
        uint8_t m2 = (uint8_t)(la & (ld ^ 1u));  /* anc_only  */
        uint8_t m4 = m1 & tr[i];                 /* anc_gets_leak  */
        uint8_t m5 = m2 & tr[i];                 /* data_gets_leak */
        uint8_t tni = tr[i] ^ 1u;
        m1 &= tni;                               /* scramble_anc  */
        m2 &= tni;                               /* scramble_data */
        a ^= m1 & rx[i];
        a ^= (uint8_t)((m1 & rz[i]) << 1);
        d ^= m2 & rx2[i];
        d ^= (uint8_t)((m2 & rz2[i]) << 1);
        /* two-qubit depolarising gate error */
        uint8_t ghm = (uint8_t)(gh[i] * 3u);
        d ^= (uint8_t)(pp[i] & 3u) & ghm;
        a ^= (uint8_t)(pp[i] >> 2) & ghm;
        /* gate-induced leakage */
        m5 |= dgl[i];  m5 &= (uint8_t)(ld ^ 1u);
        m4 |= agl[i];  m4 &= (uint8_t)(la ^ 1u);
        new_data += m5;
        new_anc += m4;
        d |= (uint8_t)(m5 << 2);
        a |= (uint8_t)(m4 << 2);
        pd[i] = d;
        pa[i] = a;
    }
    counts[0] = new_data;
    counts[1] = new_anc;
}
"""

_lib: ctypes.CDLL | None = None


def _cpu_tag() -> str:
    """A machine fingerprint for the build cache.

    The library is compiled with ``-march=native``, so a cached ``.so``
    must never be loaded on a CPU with a different ISA (e.g. a container
    image baked on an AVX-512 host and run elsewhere would SIGILL).
    """
    parts = [platform.machine()]
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith(("model name", "flags", "Features")):
                    parts.append(line.strip())
                    break
    except OSError:
        parts.append(platform.processor())
    return "|".join(parts)


def _build() -> ctypes.CDLL | None:
    """Compile (or load the cached build of) the kernel library."""
    digest = hashlib.sha256(
        (_SOURCE + "|O3-native|" + _cpu_tag()).encode()
    ).hexdigest()[:16]
    cache_dir = os.environ.get("REPRO_CKERNEL_DIR") or os.path.join(
        tempfile.gettempdir(), "repro-ckernels"
    )
    so_path = os.path.join(cache_dir, f"simkernels-{digest}.so")
    if not os.path.exists(so_path):
        try:
            os.makedirs(cache_dir, exist_ok=True)
            src_path = os.path.join(cache_dir, f"simkernels-{digest}.c")
            with open(src_path, "w") as handle:
                handle.write(_SOURCE)
            tmp_path = f"{so_path}.{os.getpid()}.tmp"
            # -march=native is safe: the library is built on the machine that
            # runs it (and rebuilt per machine via the temp-dir cache).  Some
            # toolchains reject it; retry generic before giving up.
            for extra in (["-march=native"], []):
                try:
                    subprocess.run(
                        ["cc", "-O3", "-fPIC", "-shared", *extra, src_path, "-o", tmp_path],
                        check=True,
                        capture_output=True,
                        timeout=120,
                    )
                    break
                except subprocess.CalledProcessError:
                    if not extra:
                        raise
            os.replace(tmp_path, so_path)  # atomic under concurrent builds
        except Exception:
            return None
    try:
        lib = ctypes.CDLL(so_path)
    except OSError:
        return None
    lib.pcg64_bern.argtypes = [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_uint64,
        ctypes.c_int64, ctypes.c_void_p,
    ]
    lib.pcg64_bern.restype = None
    lib.cnot_layer.argtypes = [ctypes.c_void_p] * 12 + [ctypes.c_int64, ctypes.c_void_p]
    lib.cnot_layer.restype = None
    return lib


def available() -> bool:
    """Whether the compiled kernels can be used in this environment."""
    global _lib
    if os.environ.get("REPRO_SIM_CKERNELS", "1") == "0":
        return False
    if _lib is None:
        _lib = _build()
    return _lib is not None


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def pcg64_bern(
    state: np.ndarray, inc: np.ndarray, threshold: int, out: np.ndarray
) -> None:
    """Fill ``out`` (uint8, C-contiguous) with Bernoulli masks; advance ``state``."""
    assert _lib is not None
    _lib.pcg64_bern(
        _ptr(state), _ptr(inc), ctypes.c_uint64(threshold),
        ctypes.c_int64(out.size), _ptr(out),
    )


def cnot_layer(
    pd: np.ndarray,
    pa: np.ndarray,
    isz: np.ndarray,
    masks: tuple,
    counts: np.ndarray,
) -> None:
    """Run the fused layer kernel over ``n = pd.size`` elements.

    ``masks`` is the 8-mask + pauli tuple (transport, rand_x, rand_z,
    rand_x2, rand_z2, gate_hit, pauli_u8, data_gate_leak, anc_gate_leak) in
    draw order; ``counts`` is an int64[2] output (new data/ancilla leaks).
    """
    assert _lib is not None
    transport, rand_x, rand_z, rand_x2, rand_z2, gate_hit, pauli, dgl, agl = masks
    _lib.cnot_layer(
        _ptr(pd), _ptr(pa), _ptr(isz),
        _ptr(transport), _ptr(rand_x), _ptr(rand_z), _ptr(rand_x2), _ptr(rand_z2),
        _ptr(gate_hit), _ptr(pauli), _ptr(dgl), _ptr(agl),
        ctypes.c_int64(pd.size), _ptr(counts),
    )
