"""Ordered Bernoulli/integer draw sources for the simulator hot path.

The simulator's RNG contract is *sequential*: every round consumes a fixed
schedule of ``Generator.random`` and ``Generator.integers`` calls whose
order, shapes and dtypes must match the historical implementation draw for
draw (that is what keeps runs bit-for-bit reproducible).  This module turns
that schedule into an explicit object so the same consumption order can be
executed two ways:

* :class:`SerialDrawSource` — generates on demand on the calling thread,
  drawing into pinned buffers (``Generator.random(out=...)``) and comparing
  in place.  This is the low-overhead path for small shot batches.
* :class:`PipelinedDrawSource` — a prefetch worker thread runs the round's
  draw schedule ahead of the consumer, so PCG64 generation (which releases
  the GIL and is otherwise ~half the round's wall-clock at 20k shots)
  overlaps with the Pauli algebra on the main thread.  Buffers cycle
  through bounded per-shape rings, so memory stays fixed and the worker
  applies natural backpressure.

Both sources yield the *identical* value stream: the worker executes the
exact same ``Generator`` calls in the exact same order, just earlier in
wall-clock time.  Two further contract-preserving tricks live here:

* Bernoulli draws with ``p <= 0`` or ``p >= 1`` have constant results, so
  the source skips generation entirely and advances the bit generator's
  state by the exact number of skipped variates
  (``BitGenerator.advance(n)``), returning a shared constant mask.  This
  turns e.g. the default ``removal_prob = 1.0`` LRC draw and every
  ideal-noise draw into (amortised) no-ops.
* Masks are uint8 0/1 rather than bool so the packed-plane kernels can use
  them in bitwise arithmetic directly; bool views are free either way.

The schedule is declared once per run as a :class:`DrawPlan` — a fixed body
per round plus two conditional LRC segments whose activation is only known
at round start (``mask.any()`` on the pending LRC decisions).  The consumer
posts those two flags per round; everything else is run-constant.
"""

from __future__ import annotations

import math
import os
import queue
import threading
from dataclasses import dataclass, field

import numpy as np

from . import _ckernels

_MASK64 = (1 << 64) - 1

__all__ = [
    "DrawOp",
    "DrawPlan",
    "SerialDrawSource",
    "PipelinedDrawSource",
    "make_draw_source",
]

#: Ring slots per shape: the layer kernel holds a full round's worth of one
#: shape's masks at once (8 of them) while computing its tiled op pass, so
#: the rings must be deeper than that (plus pipelined lookahead).
RING_SLOTS = 12

#: Target float64 bytes per generation chunk: draws are produced and
#: thresholded in row blocks that fit L2, so the comparison reads the fresh
#: draws from cache instead of streaming the whole buffer back from memory.
#: Row-blocking a C-contiguous fill preserves the exact value sequence.
CHUNK_BYTES = 256 * 1024


@dataclass(frozen=True)
class DrawOp:
    """One RNG call of the per-round schedule.

    ``kind`` is ``"bern"`` (``random(shape) < threshold`` -> uint8 mask) or
    ``"randint"`` (``integers(low, high, shape)`` narrowed to uint8; the
    draw itself stays int64 exactly like the baseline).  ``shape_id``
    indexes :attr:`DrawPlan.shapes`.
    """

    kind: str
    shape_id: int
    threshold: float = 0.0
    low: int = 0
    high: int = 0


@dataclass
class DrawPlan:
    """The complete, ordered draw schedule of one simulator run.

    ``body`` runs every round; ``lrc_data`` / ``lrc_anc`` are prepended when
    the round's pending-LRC flags say so; ``final`` runs once after the last
    round.  ``shapes`` maps shape ids to ``(shots, n)`` tuples.

    Time-structured noise (``NoiseParams.is_time_structured``) sets
    ``bodies`` — one pre-compiled body per round, indexed by round number —
    in which case ``body`` is ignored.  Stationary runs leave ``bodies`` as
    ``None`` and execute the identical schedule they always have.
    """

    shapes: list[tuple[int, int]] = field(default_factory=list)
    lrc_data: list[DrawOp] = field(default_factory=list)
    lrc_anc: list[DrawOp] = field(default_factory=list)
    body: list[DrawOp] = field(default_factory=list)
    final: list[DrawOp] = field(default_factory=list)
    bodies: list[list[DrawOp]] | None = None

    def shape_id(self, shape: tuple[int, int]) -> int:
        """Intern ``shape`` and return its id."""
        try:
            return self.shapes.index(shape)
        except ValueError:
            self.shapes.append(shape)
            return len(self.shapes) - 1

    def round_ops(
        self, lrc_data_any: bool, lrc_anc_any: bool, round_index: int = 0
    ) -> list[DrawOp]:
        """The ops of one round given the two per-round LRC flags."""
        ops: list[DrawOp] = []
        if lrc_data_any:
            ops.extend(self.lrc_data)
        if lrc_anc_any:
            ops.extend(self.lrc_anc)
        ops.extend(self.body if self.bodies is None else self.bodies[round_index])
        return ops


def _constant_kind(threshold: float) -> str | None:
    """``"zeros"`` / ``"ones"`` when a Bernoulli draw has a constant result."""
    if threshold <= 0.0:
        return "zeros"
    if threshold >= 1.0:
        return "ones"
    return None


class _Executor:
    """Shared machinery that runs :class:`DrawOp` lists against a Generator.

    When the compiled kernels are available, Bernoulli masks are produced by
    the C PCG64 loop operating on a *shadow* copy of the bit generator's
    128-bit state; the shadow is flushed back into the ``Generator`` before
    any operation that must run through NumPy (``integers`` with its
    rejection sampling, ``advance`` for constant draws, and at teardown), so
    the Generator remains authoritative at every NumPy call and after the
    run.  The value stream is identical in all modes.
    """

    def __init__(self, rng: np.random.Generator, plan: DrawPlan) -> None:
        self.rng = rng
        self.plan = plan
        self._use_c = _ckernels.available() and self._is_pcg64(rng)
        self._shadow = False
        self._state_hl = np.zeros(2, dtype=np.uint64)
        self._inc_hl = np.zeros(2, dtype=np.uint64)
        self._chunk_rows = [
            max(64, CHUNK_BYTES // (max(1, shape[1]) * 8)) for shape in plan.shapes
        ]
        self._draw_bufs = [
            np.empty((min(rows, shape[0]), shape[1]), dtype=np.float64)
            for rows, shape in zip(self._chunk_rows, plan.shapes)
        ]
        self._const_zeros = [
            _FrozenMask(np.zeros(shape, dtype=np.uint8)) for shape in plan.shapes
        ]
        self._const_ones = [
            _FrozenMask(np.ones(shape, dtype=np.uint8)) for shape in plan.shapes
        ]

    @staticmethod
    def _is_pcg64(rng: np.random.Generator) -> bool:
        state = rng.bit_generator.state
        return state.get("bit_generator") == "PCG64"

    def _load_shadow(self) -> None:
        if not self._shadow:
            state = self.rng.bit_generator.state["state"]
            value, inc = state["state"], state["inc"]
            self._state_hl[0] = value >> 64
            self._state_hl[1] = value & _MASK64
            self._inc_hl[0] = inc >> 64
            self._inc_hl[1] = inc & _MASK64
            self._shadow = True

    def flush(self) -> None:
        """Write the shadow PCG64 state back into the Generator."""
        if self._shadow:
            generator = self.rng.bit_generator
            state = generator.state
            state["state"]["state"] = (
                int(self._state_hl[0]) << 64
            ) | int(self._state_hl[1])
            generator.state = state
            self._shadow = False

    def execute(self, op: DrawOp, out: np.ndarray | None) -> np.ndarray:
        """Run one op; fill ``out`` (uint8) or return a shared constant mask."""
        if op.kind == "bern":
            constant = _constant_kind(op.threshold)
            if constant is not None:
                # The baseline still consumed shots*n variates here; skip
                # the generation but advance the stream by exactly that much.
                # ``advance`` also resets PCG64's buffered half-word
                # (``has_uint32``/``uinteger``), which real double draws
                # leave untouched and a later bounded ``integers`` call would
                # consume — restore it or the integer stream forks.
                shape = self.plan.shapes[op.shape_id]
                self.flush()
                generator = self.rng.bit_generator
                before = generator.state
                generator.advance(shape[0] * shape[1])
                if before["has_uint32"]:
                    after = generator.state
                    after["has_uint32"] = before["has_uint32"]
                    after["uinteger"] = before["uinteger"]
                    generator.state = after
                bank = self._const_zeros if constant == "zeros" else self._const_ones
                return bank[op.shape_id].mask
            assert out is not None
            if self._use_c:
                # ceil(p * 2**53) << 11 is exact (power-of-two scaling) and
                # decides u < p on the raw integer draw, see _ckernels.
                self._load_shadow()
                threshold = math.ceil(op.threshold * 9007199254740992.0) << 11
                _ckernels.pcg64_bern(self._state_hl, self._inc_hl, threshold, out)
                return out
            # Generate + threshold in row blocks: contiguous row slices of a
            # C-order fill consume the identical value sequence, and the
            # comparison then reads L2-resident draws.
            shots = self.plan.shapes[op.shape_id][0]
            chunk = self._draw_bufs[op.shape_id]
            rows = chunk.shape[0]
            random = self.rng.random
            for start in range(0, shots, rows):
                stop = min(start + rows, shots)
                draw = chunk[: stop - start]
                random(out=draw)
                np.less(draw, op.threshold, out=out[start:stop])
            return out
        # randint: the generator call matches the baseline exactly (int64,
        # rejection sampling and all); only the returned copy is narrowed.
        self.flush()
        values = self.rng.integers(
            op.low, op.high, size=self.plan.shapes[op.shape_id]
        )
        assert out is not None
        np.copyto(out, values, casting="unsafe")
        return out


class _FrozenMask:
    """A shared read-only constant mask (all zeros or all ones)."""

    def __init__(self, mask: np.ndarray) -> None:
        mask.flags.writeable = False
        self.mask = mask


class SerialDrawSource:
    """On-demand draw source: same thread, pinned buffers, zero lookahead."""

    def __init__(self, rng: np.random.Generator, plan: DrawPlan) -> None:
        self._executor = _Executor(rng, plan)
        self._plan = plan
        self._rings = [
            [np.empty(shape, dtype=np.uint8) for _ in range(RING_SLOTS)]
            for shape in plan.shapes
        ]
        self._cursor = [0] * len(plan.shapes)
        self._pending: list[DrawOp] = []
        self._index = 0
        self._round = 0

    # -- schedule driving ------------------------------------------------
    def start_round(self, lrc_data_any: bool, lrc_anc_any: bool) -> None:
        """Declare the next round's conditional segments."""
        self._pending = self._plan.round_ops(lrc_data_any, lrc_anc_any, self._round)
        self._round += 1
        self._index = 0

    def start_final(self) -> None:
        """Switch to the end-of-run readout segment."""
        self._pending = list(self._plan.final)
        self._index = 0

    # -- consumption -----------------------------------------------------
    def next(self) -> np.ndarray:
        """The next mask/values array of the schedule, in stream order."""
        op = self._pending[self._index]
        self._index += 1
        ring = self._rings[op.shape_id]
        slot = self._cursor[op.shape_id]
        self._cursor[op.shape_id] = (slot + 1) % RING_SLOTS
        return self._executor.execute(op, ring[slot])

    def release(self, mask: np.ndarray) -> None:
        """No-op serially; ring slots recycle by draw order."""

    def close(self) -> None:
        """Resync the Generator with anything the C kernels consumed."""
        self._executor.flush()


class PipelinedDrawSource:
    """Prefetching draw source: a worker thread runs the schedule ahead.

    The worker owns the Generator for the duration of the run and executes
    the same op sequence the consumer will request, pushing finished masks
    through a bounded queue; per-shape rings of reusable buffers bound both
    memory and lookahead.  ``release`` must be called once per consumed
    mask — that is what hands the buffer back to the worker.
    """

    def __init__(self, rng: np.random.Generator, plan: DrawPlan, rounds: int) -> None:
        self._plan = plan
        self._rounds = rounds
        self._executor = _Executor(rng, plan)
        self._results: queue.Queue = queue.Queue(maxsize=2 * RING_SLOTS)
        self._flags: queue.Queue = queue.Queue()
        self._free: list[queue.SimpleQueue] = []
        self._slot_of: dict[int, int] = {}
        for shape in plan.shapes:
            ring: queue.SimpleQueue = queue.SimpleQueue()
            for _ in range(RING_SLOTS):
                buf = np.empty(shape, dtype=np.uint8)
                self._slot_of[id(buf)] = len(self._free)
                ring.put(buf)
            self._free.append(ring)
        self._stop = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._work, name="sim-draw-prefetch", daemon=True
        )
        self._thread.start()

    # -- worker ----------------------------------------------------------
    def _work(self) -> None:
        try:
            for round_index in range(self._rounds):
                flags = self._get(self._flags)
                if flags is None:
                    return
                for op in self._plan.round_ops(*flags, round_index):
                    if not self._produce(op):
                        return
            for op in self._plan.final:
                if not self._produce(op):
                    return
        except BaseException as error:  # pragma: no cover - defensive
            self._error = error
            self._results.put(None)
        finally:
            # Leave the Generator authoritative wherever consumption stopped.
            self._executor.flush()

    def _produce(self, op: DrawOp) -> bool:
        out = None
        if op.kind != "bern" or _constant_kind(op.threshold) is None:
            out = self._get(self._free[op.shape_id])
            if out is None:
                return False
        result = self._executor.execute(op, out)
        while not self._stop.is_set():
            try:
                self._results.put(result, timeout=0.1)
                return True
            except queue.Full:
                continue
        return False

    def _get(self, source: queue.Queue | queue.SimpleQueue):
        while not self._stop.is_set():
            try:
                return source.get(timeout=0.1)
            except queue.Empty:
                continue
        return None

    # -- schedule driving -------------------------------------------------
    def start_round(self, lrc_data_any: bool, lrc_anc_any: bool) -> None:
        self._flags.put((lrc_data_any, lrc_anc_any))

    def start_final(self) -> None:
        """The worker enters the final segment on its own after ``rounds``."""

    # -- consumption ------------------------------------------------------
    def next(self) -> np.ndarray:
        result = self._results.get()
        if result is None:
            raise RuntimeError("draw prefetch worker failed") from self._error
        return result

    def release(self, mask: np.ndarray) -> None:
        slot = self._slot_of.get(id(mask))
        if slot is not None:  # constant masks and integer arrays aren't pooled
            self._free[slot].put(mask)

    def close(self) -> None:
        """Stop the worker (idempotent); the generator state is left wherever
        the worker got to, exactly as an abandoned serial run would."""
        self._stop.set()
        self._flags.put(None)
        self._thread.join(timeout=5.0)


def make_draw_source(
    rng: np.random.Generator,
    plan: DrawPlan,
    rounds: int,
    shots: int,
    prefetch: str = "auto",
):
    """Pick the draw source for a run.

    ``prefetch``: ``"on"`` / ``"off"`` force the choice; ``"auto"`` enables
    the worker thread on multi-core hosts for batches large enough that
    PCG64 generation dominates (the crossover sits around a few thousand
    shots).  Single-core hosts always run serially — a prefetch thread can
    only add queue overhead there.
    """
    if prefetch not in ("auto", "on", "off"):
        raise ValueError(
            f"rng_prefetch must be 'auto', 'on' or 'off', got {prefetch!r}"
        )
    multicore = (os.cpu_count() or 1) >= 2
    if prefetch == "on" or (prefetch == "auto" and multicore and shots >= 4096):
        return PipelinedDrawSource(rng, plan, rounds)
    return SerialDrawSource(rng, plan)
