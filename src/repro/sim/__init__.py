"""Leakage-aware Pauli-frame simulation of repeated QEC rounds."""

from .simulator import LeakageSimulator, RoundRecord, RunResult, SimulatorOptions
from .state import ChannelScratch, SimState
from .workspace import RoundWorkspace

__all__ = [
    "LeakageSimulator",
    "SimulatorOptions",
    "RunResult",
    "RoundRecord",
    "SimState",
    "ChannelScratch",
    "RoundWorkspace",
]
