"""Preallocated per-run scratch memory for the simulator hot path.

One QEC round of the baseline simulator allocated ~30 fresh ``(shots, n)``
arrays: every Bernoulli draw materialised a new float64 array, every chained
boolean expression (``a & b & ~c``) two intermediate temporaries, and every
entangling layer a full set of gather copies.  At the 100d-round scale the
paper's leakage-population sweeps run at (Section 6, "Scaling Simulations
using Leakage Sampling"), allocator traffic and redundant passes over
round-shaped arrays — not arithmetic — dominated wall-clock.

:class:`RoundWorkspace` hoists the buffers out of the round loop: the
round-shaped temporaries are allocated once per
:meth:`~repro.sim.LeakageSimulator.run_incremental` call and reused every
round.  Random draws land in the pinned float64 buffers via
``Generator.random(out=...)`` — the same C stream as
``Generator.random(shape)``, so the optimized simulator consumes the
*identical* sequence of RNG values as the allocating baseline and stays
bit-for-bit reproducible (the frozen contract ``tests/test_sim_equivalence.py``
enforces).

Two further representations live here because they make the hot loops much
cheaper than the public boolean layout:

* ``data_pack`` / ``anc_pack`` are uint8 planes packing each register's
  Pauli frame and leakage flag as ``x | z << 1 | leaked << 2``.  The CNOT
  layers gather/scatter *one* packed array per register instead of six
  boolean ones, and apply the two-qubit Pauli-pair error with two bitwise
  ops instead of eight.  The packs are rebuilt from the boolean state before
  the entangling layers and unpacked right after, so every other phase (and
  every policy) keeps seeing plain ``bool`` arrays.
* ``det_f32`` / ``counts_f32`` / ``pat_f32`` back the pattern extraction,
  which is two small float32 matmuls (member-count GEMM, OR-threshold,
  position-weight GEMM) instead of per-group gather/shift/scatter loops.

Nothing in here is shared across ``run_incremental`` calls: a fresh
workspace per call is what keeps concurrent generators (e.g. multiple
:class:`repro.realtime.SimulatorStream` instances over distinct simulators)
isolated without locking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .state import ChannelScratch

__all__ = ["LayerWorkspace", "RoundWorkspace"]


@dataclass
class LayerWorkspace:
    """Scratch for one entangling layer of ``gates`` CNOTs.

    Layers with the same gate count share one instance: a layer's buffers
    are dead once its write-back completes, so reuse across layers is safe.
    All masks are uint8 holding 0/1 (the packed-plane algebra is bitwise);
    the Bernoulli masks themselves arrive from the run's draw source.
    """

    ld: np.ndarray  # original data-leak flags (0/1)
    la: np.ndarray  # original ancilla-leak flags (0/1)
    hz: np.ndarray  # healthy & Z-type-column mask
    hnz: np.ndarray  # healthy & X-type-column mask
    t: np.ndarray  # general temporary
    m1: np.ndarray  # mask slots (scramble masks, gate-hit, new leaks, ...)
    m2: np.ndarray
    m4: np.ndarray
    m5: np.ndarray

    @classmethod
    def allocate(cls, shots: int, gates: int) -> "LayerWorkspace":
        """Allocate all buffers for a ``(shots, gates)`` layer."""
        u8 = lambda: np.empty((shots, gates), dtype=np.uint8)  # noqa: E731
        return cls(
            ld=u8(), la=u8(), hz=u8(), hnz=u8(),
            t=u8(), m1=u8(), m2=u8(), m4=u8(), m5=u8(),
        )


class RoundWorkspace:
    """Every round-shaped temporary of one simulator run, allocated once.

    Lifetimes (audited in the simulator, pinned by the no-aliasing tests):

    * ``data_lrc`` / ``anc_lrc`` double as last round's pending-LRC input and
      this round's policy-decision output — the pending mask is fully
      consumed in phase 1 before the policy overwrites it in phase 6.
    * ``pattern_a`` / ``pattern_b`` ping-pong between "current" and
      "previous" round patterns (two-round policies read both), swapped by
      the simulator after each round.
    * ``measurement`` is reference-swapped with ``SimState.prev_measurement``
      each round, so consecutive measurements alternate between two buffers
      without copying.
    * ``anc_lrc`` is a single *frozen* (non-writable) zeros array when the
      policy declares ``emits_ancilla_lrc = False`` — the per-round
      ``np.zeros`` of the baseline hoisted to one allocation per run.
    """

    #: Becomes ``True`` (as an instance attribute) once :meth:`release` runs;
    #: live workspaces read the class-level ``False``.
    released: bool = False

    def __init__(
        self,
        shots: int,
        num_data: int,
        num_ancilla: int,
        layer_is_z: list[np.ndarray],
        num_pattern_groups: int,
        pattern_needs_threshold: bool,
        uses_mlr: bool,
        emits_ancilla_lrc: bool,
        pattern_dtype: type = np.int64,
    ) -> None:
        self.shots = shots
        # Per-channel scratch (Bernoulli landing zones + two bool temporaries).
        self.data = ChannelScratch.allocate(shots, num_data)
        self.anc = ChannelScratch.allocate(shots, num_ancilla)
        # Pending-LRC / decision buffers.
        self.data_lrc = np.zeros((shots, num_data), dtype=bool)
        if emits_ancilla_lrc:
            self.anc_lrc = np.zeros((shots, num_ancilla), dtype=bool)
        else:
            frozen = np.zeros((shots, num_ancilla), dtype=bool)
            frozen.flags.writeable = False
            self.anc_lrc = frozen
        self.emits_ancilla_lrc = emits_ancilla_lrc
        # Speculation-pattern ping-pong (current / previous round).
        self.pattern_a = np.zeros((shots, num_data), dtype=pattern_dtype)
        self.pattern_b = np.zeros((shots, num_data), dtype=pattern_dtype)
        # Measurement round-trip.
        self.measurement = np.empty((shots, num_ancilla), dtype=bool)
        self.detectors = np.empty((shots, num_ancilla), dtype=bool)
        self.mlr_flags = (
            np.empty((shots, num_ancilla), dtype=bool) if uses_mlr else None
        )
        self.mlr_neighbor = (
            np.empty((shots, num_data), dtype=bool) if uses_mlr else None
        )
        # New-leak event counters filled by the fused C layer kernel.
        self.layer_counts = np.zeros(2, dtype=np.int64)
        # Packed Pauli-frame planes (x | z<<1 | leaked<<2) and the uint8
        # shift scratch used to (un)pack them around the entangling layers.
        self.data_pack = np.empty((shots, num_data), dtype=np.uint8)
        self.anc_pack = np.empty((shots, num_ancilla), dtype=np.uint8)
        self.data_u8 = np.empty((shots, num_data), dtype=np.uint8)
        self.anc_u8 = np.empty((shots, num_ancilla), dtype=np.uint8)
        # Pattern-extraction GEMM operands.
        self.det_f32 = np.empty((shots, num_ancilla), dtype=np.float32)
        self.pat_f32 = np.empty((shots, num_data), dtype=np.float32)
        self.counts_f32 = (
            np.empty((shots, num_pattern_groups), dtype=np.float32)
            if pattern_needs_threshold
            else None
        )
        # One LayerWorkspace per distinct gate count, shared between layers,
        # plus a full-size 0/1 basis mask per layer: materialised columns
        # beat a broadcast (1, gates) row inside the bitwise kernels.
        by_gates: dict[int, LayerWorkspace] = {}
        self.layers: list[LayerWorkspace | None] = []
        self.layer_is_z_full: list[np.ndarray | None] = []
        for is_z in layer_is_z:
            gates = int(is_z.shape[0])
            if not gates:
                self.layers.append(None)
                self.layer_is_z_full.append(None)
                continue
            if gates not in by_gates:
                by_gates[gates] = LayerWorkspace.allocate(shots, gates)
            self.layers.append(by_gates[gates])
            full = np.empty((shots, gates), dtype=np.uint8)
            full[:] = is_z.astype(np.uint8)[np.newaxis, :]
            self.layer_is_z_full.append(full)

    def release(self) -> None:
        """Drop every pinned buffer so a half-consumed run frees its memory.

        :meth:`~repro.sim.LeakageSimulator.run_incremental` calls this from
        its ``finally`` block: a consumer that ``close()``s the generator
        mid-stream would otherwise keep the entire round-shaped scratch set
        alive for as long as it holds the (exhausted) generator object.
        Clearing the instance ``__dict__`` severs every buffer reference in
        one step; afterwards only :attr:`released` is readable.
        """
        self.__dict__.clear()
        self.released = True
