"""The fuzz harness: drive the matrix, collect a machine-readable report.

Budgets
-------
``smoke``
    Every cell runs tiers 1 and 2; tier 3 (statistical sanity, which needs
    larger shot counts) runs on a deterministic 1-in-4 subsample of the
    mode-independent combinations.  Sized for a CI gate.
``full``
    Every cell runs every tier, tier 3 on every combination.  The nightly
    soak budget.
``<integer>``
    Like ``smoke`` restricted to the first N cells of a seed-shuffled
    ordering — a quick local iteration loop.

Crash-freedom is tier 1 of the contract, so no exception escapes a cell:
the harness records the traceback and moves on, and the report (and process
exit code) aggregates everything found.
"""

from __future__ import annotations

import json
import random
import time
import traceback
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs.trace import span
from .invariants import RunCache, check_bit_identity, check_schema, check_statistics
from .matrix import ScenarioCell, cell_config, enumerate_cells, small_instance

__all__ = ["CellResult", "FuzzReport", "run_fuzz"]

#: In smoke budget, run tier 3 on combos whose hash falls in this residue.
_SMOKE_STAT_MODULUS = 4


@dataclass
class CellResult:
    """Outcome of one fuzzed cell."""

    cell: str
    status: str = "ok"  # ok | violation | crash
    tiers: dict[str, str] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    error: str | None = None
    traceback: str | None = None
    duration_ms: float = 0.0
    tier_ms: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "cell": self.cell,
            "status": self.status,
            "tiers": self.tiers,
            "duration_ms": round(self.duration_ms, 3),
            "tier_ms": {k: round(v, 3) for k, v in self.tier_ms.items()},
        }
        if self.violations:
            data["violations"] = self.violations
        if self.error is not None:
            data["error"] = self.error
            data["traceback"] = self.traceback
        return data


@dataclass
class FuzzReport:
    """Aggregated outcome of one fuzz run."""

    seed: int
    budget: str
    cells_total: int
    cells_run: int
    results: list[CellResult] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def crashes(self) -> list[CellResult]:
        return [r for r in self.results if r.status == "crash"]

    @property
    def violations(self) -> list[CellResult]:
        return [r for r in self.results if r.status == "violation"]

    @property
    def ok(self) -> bool:
        return not self.crashes and not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "cells_total": self.cells_total,
            "cells_run": self.cells_run,
            "crashes": len(self.crashes),
            "violations": len(self.violations),
            "duration_s": round(self.duration_s, 3),
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def describe(self) -> str:
        """One-line human summary."""
        status = "OK" if self.ok else "FAIL"
        return (
            f"fuzz {status}: {self.cells_run}/{self.cells_total} cells, "
            f"{len(self.crashes)} crashes, {len(self.violations)} violations "
            f"in {self.duration_s:.1f}s (seed {self.seed}, budget {self.budget})"
        )


def _stat_subsample(combo: tuple[str, str, str, str], seed: int) -> bool:
    """Deterministic 1-in-N pick of combos for smoke-tier statistics."""
    digest = zlib.crc32("/".join(combo).encode())
    return (digest + seed) % _SMOKE_STAT_MODULUS == 0


def run_fuzz(
    *,
    seed: int = 0,
    budget: str = "smoke",
    patterns: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Fuzz the scenario matrix and return the aggregated report.

    ``patterns`` restricts the matrix to cells whose
    ``code/decoder/policy/noise/mode`` key matches any of the globs.
    """
    started = time.perf_counter()
    cells = enumerate_cells(patterns=patterns)
    total = len(cells)

    if budget not in ("smoke", "full"):
        try:
            limit = int(budget)
        except ValueError:
            raise ValueError(
                f"budget must be 'smoke', 'full' or an integer, got {budget!r}"
            ) from None
        if limit <= 0:
            raise ValueError("an integer budget must be positive")
        shuffled = list(cells)
        random.Random(seed).shuffle(shuffled)
        cells = shuffled[:limit]

    cache = RunCache()
    stats_done: set[tuple[str, str, str, str]] = set()
    results: list[CellResult] = []

    for index, cell in enumerate(cells):
        result = CellResult(cell=cell.key)
        cell_started = time.perf_counter()
        cell_span = span("fuzz.cell", cell=cell.key)
        cell_span.__enter__()
        config = None
        checks: list[tuple[str, Callable[[], list[str]]]] = []
        try:
            config = cell_config(cell, small_instance(cell, seed))
        except Exception as error:  # noqa: BLE001 - crash freedom is the tier
            result.status = "crash"
            result.tiers["config"] = "crash"
            result.error = f"{type(error).__name__}: {error}"
            result.traceback = traceback.format_exc()
        if config is not None:
            checks.append(("schema", lambda: check_schema(config)))
            checks.append(
                ("bit_identity", lambda: check_bit_identity(cell, config, cache))
            )
            run_stats = budget == "full" or _stat_subsample(cell.combo, seed)
            if run_stats and cell.combo not in stats_done:
                stats_done.add(cell.combo)
                checks.append(("statistics", lambda: check_statistics(config, cache)))
        for tier, check in checks:
            tier_started = time.perf_counter()
            try:
                with span("fuzz.tier", cell=cell.key, tier=tier):
                    found = check()
            except Exception as error:  # noqa: BLE001 - crash freedom is the tier
                result.tier_ms[tier] = (time.perf_counter() - tier_started) * 1e3
                result.status = "crash"
                result.tiers[tier] = "crash"
                result.error = f"{type(error).__name__}: {error}"
                result.traceback = traceback.format_exc()
                break
            result.tier_ms[tier] = (time.perf_counter() - tier_started) * 1e3
            if found:
                result.status = "violation"
                result.tiers[tier] = "violation"
                result.violations.extend(f"{tier}: {message}" for message in found)
            else:
                result.tiers[tier] = "ok"
        cell_span.__exit__(None, None, None)
        result.duration_ms = (time.perf_counter() - cell_started) * 1e3
        results.append(result)
        if progress is not None and (index + 1) % 100 == 0:
            progress(f"[{index + 1}/{len(cells)}] {cell.key}")

    return FuzzReport(
        seed=seed,
        budget=budget,
        cells_total=total,
        cells_run=len(cells),
        results=results,
        duration_s=time.perf_counter() - started,
    )
