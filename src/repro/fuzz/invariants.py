"""The three invariant tiers asserted on every scenario cell.

Each checker returns a list of human-readable violation strings (empty when
the invariant holds); crashes are *not* caught here — the harness wraps
every tier and files an exception as a tier-specific crash, because crash
freedom is itself invariant tier 1.

Comparison semantics: "bit identity" means the flat ``summary()``
dictionaries of two execution paths are **exactly** equal — the floats they
contain are pure functions of integer counters, so any drift in RNG
consumption, decoding or metrics shows up as an exact mismatch, never as a
tolerance question.  Statistical checks, by contrast, are tested through
Wilson-interval overlap, so a fixed-seed run can only flag effects far
outside sampling noise (a genuinely broken decoder or a non-monotone noise
response), never an unlucky sample.
"""

from __future__ import annotations

import json
from typing import Any

from ..api.config import ExperimentConfig
from ..api.session import Session, build_experiment, workunit_from_config
from ..experiments.memory import PERF_SUMMARY_KEYS
from ..experiments.metrics import wilson_interval
from .matrix import ScenarioCell

__all__ = ["RunCache", "check_schema", "check_bit_identity", "check_statistics"]


class RunCache:
    """Memoised execution results shared across cells of one fuzz run.

    Cells of the same (code, decoder, policy, noise) combination compare
    their execution paths against one shared offline baseline; caching it by
    config digest keeps the full-matrix run affordable.  The cache also
    verifies digest *stability* for free: a second cell arriving at the same
    digest must describe the same experiment, or its comparison fails.
    """

    def __init__(self) -> None:
        self.summaries: dict[str, dict[str, Any]] = {}
        self.undecoded: dict[str, tuple[int, int]] = {}

    def offline_summary(self, config: ExperimentConfig) -> dict[str, Any]:
        """Summary of the direct-construction offline run of ``config``."""
        digest = config.digest()
        if digest not in self.summaries:
            execution = config.execution
            result = build_experiment(config).run(
                shots=execution.shots, rounds=execution.rounds
            )
            self.summaries[digest] = result.summary()
        return self.summaries[digest]

    def undecoded_counts(self, config: ExperimentConfig) -> tuple[int, int]:
        """``(observable flips, shots)`` of the undecoded run of ``config``."""
        undecoded = config.override("execution.decoded", False).override(
            "execution.leakage_sampling", config.execution.effective_leakage_sampling
        )
        digest = undecoded.digest()
        if digest not in self.undecoded:
            execution = undecoded.execution
            run = build_experiment(undecoded).run_undecoded(
                shots=execution.shots, rounds=execution.rounds
            )
            self.undecoded[digest] = (
                int(run.observable_flips.sum()),
                execution.shots,
            )
        return self.undecoded[digest]


# --------------------------------------------------------------------- #
# Tier 1: schema round-trip
# --------------------------------------------------------------------- #
def check_schema(config: ExperimentConfig) -> list[str]:
    """Validation, dict/JSON round-trips and digest stability."""
    violations: list[str] = []
    config.validate()
    as_dict = config.to_dict()
    from_dict = ExperimentConfig.from_dict(as_dict)
    if from_dict != config:
        violations.append("to_dict/from_dict round-trip changed the config")
    from_json = ExperimentConfig.from_json(config.to_json())
    if from_json != config:
        violations.append("to_json/from_json round-trip changed the config")
    if json.loads(json.dumps(as_dict, sort_keys=True)) != as_dict:
        violations.append("to_dict form is not JSON-stable")
    if from_dict.digest() != config.digest():
        violations.append("digest changed across a dict round-trip")
    if ExperimentConfig.from_dict(as_dict) != from_dict:
        violations.append("from_dict is not deterministic")
    return violations


# --------------------------------------------------------------------- #
# Tier 2: cross-path bit identity
# --------------------------------------------------------------------- #
def _diff_summaries(label: str, left: dict, right: dict) -> list[str]:
    # Performance diagnostics (cache hit rate, dedup ratio) are inherently
    # path-dependent — a windowed decode sees different batch boundaries than
    # the offline decode of the same record — so bit identity is asserted on
    # the physics, with the perf keys stripped (see
    # :data:`repro.experiments.memory.PERF_SUMMARY_KEYS`).
    left = {k: v for k, v in left.items() if k not in PERF_SUMMARY_KEYS}
    right = {k: v for k, v in right.items() if k not in PERF_SUMMARY_KEYS}
    if left == right:
        return []
    keys = sorted(
        key
        for key in set(left) | set(right)
        if left.get(key, "<absent>") != right.get(key, "<absent>")
    )
    return [f"{label}: summaries differ on {keys}"]


def check_bit_identity(
    cell: ScenarioCell, config: ExperimentConfig, cache: RunCache
) -> list[str]:
    """The cell's execution mode must reproduce the offline baseline exactly.

    * ``offline`` — ``Session.run`` against direct construction.
    * ``windowed`` — window >= rounds realtime decode against offline.
    * ``batched`` — ``Session.run`` and a workers=1 sweep shard of the
      small-chunk config against its direct construction (chunk boundaries
      set per-chunk seeds, so the batched config is its own baseline).
    * ``sweep-shard`` — a workers=1 shard against the offline baseline.
    """
    execution = config.execution
    if cell.mode == "offline":
        baseline = cache.offline_summary(config)
        via_session = Session(config).run().summary()
        return _diff_summaries("Session.run vs direct construction", via_session, baseline)

    if cell.mode == "windowed":
        baseline = cache.offline_summary(config)
        windowed = config.override("execution.window_rounds", execution.rounds)
        via_window = Session(windowed).run().summary()
        return _diff_summaries(
            "windowed (window >= rounds) vs offline", via_window, baseline
        )

    if cell.mode == "batched":
        batched = config.override("execution.decode_batch_size", 2)
        direct = build_experiment(batched).run(
            shots=execution.shots, rounds=execution.rounds
        ).summary()
        violations = _diff_summaries(
            "batched Session.run vs direct construction",
            Session(batched).run().summary(),
            direct,
        )
        shard_row = _sweep_row(batched)
        violations.extend(
            _diff_summaries("batched sweep shard vs direct construction", shard_row, direct)
        )
        return violations

    if cell.mode == "sweep-shard":
        baseline = cache.offline_summary(config)
        return _diff_summaries(
            "workers=1 sweep shard vs offline", _sweep_row(config), baseline
        )

    raise ValueError(f"unknown execution mode {cell.mode!r}")


def _sweep_row(config: ExperimentConfig) -> dict[str, Any]:
    """Run ``config`` through the sweep engine as a single serial shard."""
    from ..sweeps.units import run_unit_serial

    return run_unit_serial(workunit_from_config(config))


# --------------------------------------------------------------------- #
# Tier 3: statistical sanity
# --------------------------------------------------------------------- #
#: The two physical error rates of the monotonicity probe.
STAT_P_LOW = 2e-3
STAT_P_HIGH = 2e-2


def _interval_violations(label: str, failures: int, shots: int) -> list[str]:
    low, high = wilson_interval(failures, shots)
    point = failures / shots
    if not 0.0 <= low <= point <= high <= 1.0:
        return [
            f"{label}: Wilson interval disordered "
            f"(low={low}, point={point}, high={high})"
        ]
    return []


def check_statistics(
    config: ExperimentConfig, cache: RunCache, stat_shots: int = 48
) -> list[str]:
    """LER ordering and interval sanity for one (code, decoder, policy, noise).

    All comparisons run through Wilson-interval overlap: with the ~48-shot
    budget the intervals are wide, so only gross inversions — a code whose
    LER *drops* as p rises tenfold, or a decoder significantly worse than
    not decoding at all — can flag.  The ``ideal`` preset (p = 0) asserts
    exact zero failures instead, which is deterministic.
    """
    from ..api.registry import NOISE_PRESETS

    violations: list[str] = []
    base = config.override("execution.shots", stat_shots)
    rate_parameters = NOISE_PRESETS.get(config.noise.preset).metadata.get(
        "rate_parameters", False
    )

    def failures_at(cfg: ExperimentConfig) -> tuple[int, int]:
        summary = cache.offline_summary(cfg)
        shots = summary["shots"]
        # ``summary()`` reports the rate; recover the exact count.
        return round(summary["ler"] * shots), shots

    if rate_parameters:
        low_cfg = base.override("noise.p", STAT_P_LOW)
        high_cfg = base.override("noise.p", STAT_P_HIGH)
        fail_low, shots_low = failures_at(low_cfg)
        fail_high, shots_high = failures_at(high_cfg)
        violations += _interval_violations("LER at low p", fail_low, shots_low)
        violations += _interval_violations("LER at high p", fail_high, shots_high)
        if (
            wilson_interval(fail_low, shots_low)[0]
            > wilson_interval(fail_high, shots_high)[1]
        ):
            violations.append(
                "LER not monotone in p: "
                f"p={STAT_P_LOW} gives {fail_low}/{shots_low} significantly above "
                f"p={STAT_P_HIGH} at {fail_high}/{shots_high}"
            )
        # Decoding must not be significantly worse than no decoding.
        flips, undecoded_shots = cache.undecoded_counts(high_cfg)
        violations += _interval_violations(
            "undecoded flip proportion", flips, undecoded_shots
        )
        if (
            wilson_interval(fail_high, shots_high)[0]
            > wilson_interval(flips, undecoded_shots)[1]
        ):
            violations.append(
                "decoded failure proportion significantly exceeds undecoded: "
                f"{fail_high}/{shots_high} decoded vs {flips}/{undecoded_shots} raw"
            )
    else:
        failures, shots = failures_at(base)
        violations += _interval_violations("LER", failures, shots)
        params = Session(base).noise
        if params.p == 0 and failures:
            violations.append(
                f"noiseless preset produced {failures} failures in {shots} shots"
            )
    return violations
