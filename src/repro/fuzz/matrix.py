"""Scenario-space enumeration and small-instance config generation.

The matrix is never written down: :func:`enumerate_cells` reads the live
registries, so any component registered after import — including a dummy
code registered inside a test — is enumerated without touching this module.
:func:`cell_config` turns a cell plus a :class:`SmallInstance` draw into a
concrete :class:`~repro.api.ExperimentConfig` small enough to execute in
milliseconds, which is what lets the harness afford the full cross product.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, Sequence

from ..api.config import (
    CodeConfig,
    DecoderConfig,
    ExecutionConfig,
    ExperimentConfig,
    NoiseConfig,
    PolicyConfig,
)
from ..api.registry import all_registries

__all__ = [
    "EXECUTION_MODES",
    "ScenarioCell",
    "SmallInstance",
    "enumerate_cells",
    "small_distance",
    "small_instance",
    "cell_config",
]

#: The four execution paths a config can take through the stack.
EXECUTION_MODES = ("offline", "windowed", "batched", "sweep-shard")

#: Distances probed (in order) when sizing a code family for fuzzing.
_DISTANCE_CANDIDATES = (2, 3, 4, 5)

#: Probe results per (family name, registered constructor) pair.  Keyed on
#: the constructor object too, so re-registering a name (plugin tests) can
#: never reuse a stale probe.
_distance_cache: dict[tuple[str, int], int | None] = {}


@dataclass(frozen=True)
class ScenarioCell:
    """One point of the scenario matrix."""

    code: str
    decoder: str
    policy: str
    noise: str
    mode: str

    @property
    def key(self) -> str:
        """Stable ``code/decoder/policy/noise/mode`` identifier."""
        return "/".join((self.code, self.decoder, self.policy, self.noise, self.mode))

    @property
    def combo(self) -> tuple[str, str, str, str]:
        """The mode-independent (code, decoder, policy, noise) combination."""
        return (self.code, self.decoder, self.policy, self.noise)

    def matches(self, patterns: Sequence[str]) -> bool:
        """Whether the cell key matches any of the glob ``patterns``."""
        return any(fnmatchcase(self.key, pattern) for pattern in patterns)


def enumerate_cells(
    modes: Sequence[str] = EXECUTION_MODES,
    patterns: Sequence[str] | None = None,
) -> list[ScenarioCell]:
    """The full scenario matrix, read from the registries at call time."""
    registries = all_registries()
    cells = [
        ScenarioCell(code, decoder, policy, noise, mode)
        for code in registries["codes"].names()
        for decoder in registries["decoders"].names()
        for policy in registries["policies"].names()
        for noise in registries["noise"].names()
        for mode in modes
    ]
    if patterns:
        cells = [cell for cell in cells if cell.matches(patterns)]
    return cells


def small_distance(code_name: str) -> int | None:
    """The smallest distance at which a code family constructs.

    Families without a distance knob return ``None``.  Everything else is
    probed against :data:`_DISTANCE_CANDIDATES` — registry-driven, so a
    newly registered family with unusual constraints (odd-only, >= some
    minimum) is sized correctly without fuzzer changes.  Falls back to the
    family's declared default when no candidate works.
    """
    registries = all_registries()
    entry = registries["codes"].get(code_name)
    if not entry.metadata.get("accepts_distance", True):
        return None
    cache_key = (entry.name, id(entry.obj))
    if cache_key in _distance_cache:
        return _distance_cache[cache_key]
    chosen: int | None = None
    for candidate in _DISTANCE_CANDIDATES:
        try:
            entry.obj(candidate)
        except Exception:
            continue
        chosen = candidate
        break
    if chosen is None:
        chosen = entry.metadata.get("default_distance")
    _distance_cache[cache_key] = chosen
    return chosen


@dataclass(frozen=True)
class SmallInstance:
    """The sampled experiment knobs of one fuzz cell."""

    shots: int = 4
    rounds: int = 3
    seed: int = 0
    p: float = 4e-3
    leakage_ratio: float = 1.0


def small_instance(cell: ScenarioCell, seed: int) -> SmallInstance:
    """Draw a deterministic small instance for ``cell``.

    Seeded by ``(seed, cell.key)``, so the whole matrix varies run to run
    under ``--seed`` while any single cell is exactly reproducible.
    """
    rng = random.Random(f"{seed}:{cell.key}")
    return SmallInstance(
        shots=rng.randint(3, 6),
        rounds=rng.randint(3, 5),
        seed=rng.randint(0, 2**16),
        p=rng.choice((2e-3, 4e-3, 8e-3)),
        leakage_ratio=rng.choice((0.5, 1.0)),
    )


def cell_config(cell: ScenarioCell, instance: SmallInstance) -> ExperimentConfig:
    """The concrete experiment config of one cell at one sampled instance.

    The returned config always describes the *offline* execution of the
    cell's combination; the invariant layer derives the windowed / batched
    variants from it via :meth:`ExperimentConfig.override`, so every mode
    provably runs the same underlying experiment.
    """
    registries = all_registries()
    rate_parameters = registries["noise"].get(cell.noise).metadata.get(
        "rate_parameters", False
    )
    return ExperimentConfig(
        name=f"fuzz-{cell.key.replace('/', '-')}",
        code=CodeConfig(name=cell.code, distance=small_distance(cell.code)),
        noise=NoiseConfig(
            preset=cell.noise,
            p=instance.p if rate_parameters else None,
            leakage_ratio=instance.leakage_ratio if rate_parameters else None,
        ),
        policy=PolicyConfig(name=cell.policy),
        decoder=DecoderConfig(name=cell.decoder),
        execution=ExecutionConfig(
            shots=instance.shots,
            rounds=instance.rounds,
            seed=instance.seed,
            decoded=True,
        ),
    )


def iter_combos(cells: Iterable[ScenarioCell]) -> list[tuple[str, str, str, str]]:
    """The distinct mode-independent combinations of ``cells``, in order."""
    seen: dict[tuple[str, str, str, str], None] = {}
    for cell in cells:
        seen.setdefault(cell.combo)
    return list(seen)
