"""Registry-driven scenario fuzzing: every registered combination, verified.

The scenario matrix is the cross product of everything the registries know —
codes x decoders x policies x noise presets — times the four execution
modes the stack supports (offline, windowed realtime, batched decoding,
sweep shard).  :mod:`repro.fuzz` enumerates that space live from
:mod:`repro.api.registry`, generates a small-instance
:class:`~repro.api.ExperimentConfig` for each cell, and asserts three
invariant tiers per cell:

1. **Schema** — the config validates, round-trips losslessly through
   ``to_dict``/``from_dict`` and JSON, and keeps a stable digest.
2. **Bit identity** — every execution path produces the same numbers:
   ``Session.run`` equals direct construction equals a workers=1 sweep
   shard, and the windowed realtime decode equals offline when the window
   covers the whole run.
3. **Statistical sanity** — logical error rates respond monotonically to
   the physical error rate, decoding does not make things significantly
   worse than no decoding, and Wilson intervals are well-ordered (all
   tested through interval overlap, so fixed seeds can never flake).

Because enumeration reads the registries at call time, registering a new
component — in the library or from a test — puts it under fuzz coverage
with no changes here.  Run it via ``python -m repro fuzz`` or the pytest
smoke tier in ``tests/test_fuzz.py``.
"""

from .harness import CellResult, FuzzReport, run_fuzz
from .invariants import RunCache, check_bit_identity, check_schema, check_statistics
from .matrix import (
    EXECUTION_MODES,
    ScenarioCell,
    SmallInstance,
    cell_config,
    enumerate_cells,
    small_distance,
    small_instance,
)

__all__ = [
    "EXECUTION_MODES",
    "ScenarioCell",
    "SmallInstance",
    "enumerate_cells",
    "cell_config",
    "small_distance",
    "small_instance",
    "RunCache",
    "check_schema",
    "check_bit_identity",
    "check_statistics",
    "CellResult",
    "FuzzReport",
    "run_fuzz",
]
