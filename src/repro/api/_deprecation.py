"""Process-wide once-only deprecation warnings for the legacy entry points."""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "reset"]

_WARNED: set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` at most once per process."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset() -> None:
    """Forget which warnings fired (tests only)."""
    _WARNED.clear()
