"""Declarative, serializable experiment configuration.

An :class:`ExperimentConfig` is a tree of five small dataclasses — code,
noise, policy, decoder and execution — that fully describes one experiment.
It round-trips losslessly through ``to_dict`` / ``from_dict`` and JSON, so
one config file can drive an offline run, a windowed realtime run and a
sweep grid point (see :class:`repro.api.session.Session`), be cached under a
content digest by the sweep engine, and be reviewed as plain data in a PR.

Validation is registry-backed: every component name is checked against the
registries of :mod:`repro.api.registry`, and an unknown name fails with a
did-you-mean suggestion plus the full list of registered names, so the
error message can never drift from what is actually available.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import types
from dataclasses import dataclass, field, fields, is_dataclass, replace
from pathlib import Path
from typing import Any, Union, get_args, get_origin, get_type_hints

from .registry import CODES, DECODERS, NOISE_PRESETS, POLICIES

__all__ = [
    "CodeConfig",
    "NoiseConfig",
    "PolicyConfig",
    "DecoderConfig",
    "ExecutionConfig",
    "ExperimentConfig",
    "config_schema",
]


@dataclass(frozen=True)
class CodeConfig:
    """Which QEC code to build.

    ``name`` is a registered code family; ``distance`` is optional (each
    family declares its own default, and families without a distance knob
    ignore it).
    """

    name: str = "surface"
    distance: int | None = None

    def validate(self) -> None:
        entry = CODES.get(self.name)  # raises with did-you-mean if unknown
        if self.distance is not None:
            if not entry.metadata.get("accepts_distance", True):
                raise ValueError(
                    f"code family {entry.name!r} has no distance knob "
                    f"(got distance={self.distance})"
                )
            if self.distance < 2:
                raise ValueError(f"distance must be >= 2, got {self.distance}")


@dataclass(frozen=True)
class NoiseConfig:
    """Which noise parameters to simulate under.

    ``preset`` names a registered preset.  ``p`` and ``leakage_ratio``
    override the preset's headline rates when it accepts them (``None``
    keeps the preset default); ``overrides`` replaces any further
    :class:`~repro.noise.NoiseParams` field by name.
    """

    preset: str = "paper"
    p: float | None = None
    leakage_ratio: float | None = None
    overrides: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        entry = NOISE_PRESETS.get(self.preset)
        if not entry.metadata.get("rate_parameters", False):
            if self.p is not None or self.leakage_ratio is not None:
                raise ValueError(
                    f"noise preset {entry.name!r} does not take p/leakage_ratio "
                    "(set them through overrides instead)"
                )
        if self.p is not None and not 0 <= self.p <= 0.5:
            raise ValueError(f"p must lie in [0, 0.5], got {self.p}")
        if self.leakage_ratio is not None and self.leakage_ratio < 0:
            raise ValueError(f"leakage_ratio must be non-negative, got {self.leakage_ratio}")
        from ..noise import NoiseParams

        known = {f.name for f in fields(NoiseParams)}
        for key in self.overrides:
            if key not in known:
                raise ValueError(
                    _unknown_field_message("noise.overrides", key, sorted(known))
                )


@dataclass(frozen=True)
class PolicyConfig:
    """Which leakage-mitigation policy speculates during the run.

    ``options`` holds :class:`~repro.core.GraphModelConfig` overrides for
    the GLADIATOR family (policies without a graph model reject them).
    """

    name: str = "gladiator+m"
    options: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        entry = POLICIES.get(self.name)
        if self.options:
            if not entry.metadata.get("takes_config", False):
                raise ValueError(
                    f"policy {entry.name!r} takes no graph-model options "
                    f"(got {sorted(self.options)})"
                )
            from ..core.graph_model import GraphModelConfig

            known = {f.name for f in fields(GraphModelConfig)}
            for key in self.options:
                if key not in known:
                    raise ValueError(
                        _unknown_field_message("policy.options", key, sorted(known))
                    )


@dataclass(frozen=True)
class DecoderConfig:
    """Which decoder corrects the syndrome record, and its tuning.

    ``max_exact_nodes`` / ``strategy`` are matching-decoder knobs (rejected
    for decoders that have none); ``cache_size`` sizes the cross-call
    syndrome cache (``0`` disables, ``None`` keeps the decoder default) and
    is performance-only — it never changes results and is excluded from the
    sweep cache key.
    """

    name: str = "matching"
    max_exact_nodes: int | None = None
    strategy: str | None = None
    cache_size: int | None = None

    def validate(self) -> None:
        entry = DECODERS.get(self.name)
        if self.max_exact_nodes is not None or self.strategy is not None:
            from ..decoders import ensure_tunable

            ensure_tunable(entry)
        if self.strategy is not None:
            from ..decoders import STRATEGIES

            if self.strategy not in STRATEGIES:
                raise ValueError(
                    f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
                )
        if self.max_exact_nodes is not None and self.max_exact_nodes < 0:
            raise ValueError("max_exact_nodes must be non-negative")
        if self.cache_size is not None and self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")


@dataclass(frozen=True)
class ExecutionConfig:
    """How much to run and through which execution path.

    ``decoded=False`` runs the undecoded simulator (leakage-population
    studies).  ``window_rounds`` routes decoding through the sliding-window
    realtime path (``commit_rounds`` defaults to half the window).
    ``leakage_sampling=None`` keeps the legacy convention: off for decoded
    runs, on for undecoded ones.  ``decode_batch_size`` is the
    simulate-and-decode chunk size (part of the sweep cache key — the chunk
    plan fixes per-chunk RNG seeds); ``workers`` is the sweep process-pool
    size (performance-only, key-exempt, ``None`` = ``REPRO_WORKERS``).
    ``telemetry`` activates the observability layer (``"1"``/``"on"`` for
    metrics only, any other string as the Chrome-trace output path); like
    ``workers`` it is observability-only — it never changes results and is
    excluded from the sweep cache key.  ``fused`` routes decoding through
    the zero-copy :mod:`repro.pipeline` (bit-identical results, fewer
    allocations); it is performance-only and key-exempt like ``workers``.
    ``serve_shards`` / ``serve_max_streams`` shape the network decode
    server (``python -m repro serve``): shard count and the server-wide
    admission cap.  They describe a serving deployment, never an
    experiment — digest-exempt like the other perf knobs.  ``durable``
    routes sweeps through the journaled :mod:`repro.fabric` executor
    (checkpointed shards, worker leases, crash-safe resume); results are
    bit-identical to the in-memory executor, so it too is digest-exempt.
    """

    shots: int = 100
    rounds: int = 10
    seed: int = 0
    decoded: bool = True
    leakage_sampling: bool | None = None
    decode_batch_size: int | None = None
    window_rounds: int | None = None
    commit_rounds: int | None = None
    workers: int | None = None
    telemetry: str | None = None
    fused: bool = False
    durable: bool = False
    serve_shards: int | None = None
    serve_max_streams: int | None = None

    def validate(self) -> None:
        if self.shots <= 0 or self.rounds <= 0:
            raise ValueError("shots and rounds must be positive")
        if self.fused and not self.decoded:
            raise ValueError("fused only applies to decoded runs")
        if self.decode_batch_size is not None and self.decode_batch_size <= 0:
            raise ValueError("decode_batch_size must be positive")
        if self.window_rounds is not None:
            if not self.decoded:
                raise ValueError("window_rounds only applies to decoded runs")
            if self.window_rounds <= 0:
                raise ValueError("window_rounds must be positive")
        if self.commit_rounds is not None:
            if self.window_rounds is None:
                raise ValueError("commit_rounds requires window_rounds")
            if not 0 < self.commit_rounds <= self.window_rounds:
                raise ValueError("commit_rounds must lie in [1, window_rounds]")
        if self.workers is not None and self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.serve_shards is not None and self.serve_shards <= 0:
            raise ValueError("serve_shards must be positive")
        if self.serve_max_streams is not None and self.serve_max_streams <= 0:
            raise ValueError("serve_max_streams must be positive")

    @property
    def effective_leakage_sampling(self) -> bool:
        """Resolved leakage-sampling flag (legacy default: ``not decoded``)."""
        if self.leakage_sampling is not None:
            return self.leakage_sampling
        return not self.decoded


@dataclass(frozen=True)
class ExperimentConfig:
    """The full declarative description of one experiment."""

    name: str = "experiment"
    code: CodeConfig = field(default_factory=CodeConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    decoder: DecoderConfig = field(default_factory=DecoderConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "ExperimentConfig":
        """Check field types and every section against the registries.

        Returns self.  Type errors (a string where an int belongs — easy to
        produce through ``--set`` overrides or hand-written JSON) and
        unknown component names both raise ``ValueError`` with the field
        path in the message.
        """
        if not isinstance(self.name, str):
            raise ValueError(f"name must be a string, got {self.name!r}")
        for where, section in (
            ("code", self.code),
            ("noise", self.noise),
            ("policy", self.policy),
            ("decoder", self.decoder),
            ("execution", self.execution),
        ):
            _check_section_types(section, where)
            section.validate()
        return self

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Nested plain-dict form (JSON-ready, lossless)."""
        return {
            "name": self.name,
            "code": _section_to_dict(self.code),
            "noise": _section_to_dict(self.noise),
            "policy": _section_to_dict(self.policy),
            "decoder": _section_to_dict(self.decoder),
            "execution": _section_to_dict(self.execution),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys fail with help."""
        if not isinstance(data, dict):
            raise ValueError(f"experiment config must be a mapping, got {type(data).__name__}")
        sections = {f.name: f for f in fields(cls)}
        for key in data:
            if key not in sections:
                raise ValueError(
                    _unknown_field_message("experiment config", key, sorted(sections))
                )
        kwargs: dict[str, Any] = {}
        if "name" in data:
            kwargs["name"] = str(data["name"])
        for section, section_cls in (
            ("code", CodeConfig),
            ("noise", NoiseConfig),
            ("policy", PolicyConfig),
            ("decoder", DecoderConfig),
            ("execution", ExecutionConfig),
        ):
            if section in data:
                kwargs[section] = _section_from_dict(section_cls, data[section], section)
        return cls(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Write the JSON form to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentConfig":
        """Read a config saved by :meth:`save` (or written by hand)."""
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def override(self, path: str, value: Any) -> "ExperimentConfig":
        """Copy with one dotted field replaced, e.g. ``decoder.name``.

        This is the programmatic form of the CLI's ``--set path=value``;
        sweep axes apply their grid coordinates through it too.
        """
        parts = path.split(".")
        if parts[0] == "name" and len(parts) == 1:
            return replace(self, name=str(value))
        section_names = [f.name for f in fields(self) if f.name != "name"]
        if len(parts) != 2 or parts[0] not in section_names:
            raise ValueError(
                _unknown_field_message("override path", path,
                                       ["name"] + [f"{s}.<field>" for s in section_names])
            )
        section, leaf = parts
        current = getattr(self, section)
        if leaf not in {f.name for f in fields(current)}:
            raise ValueError(
                _unknown_field_message(
                    f"{section} config", leaf, [f.name for f in fields(current)]
                )
            )
        return replace(self, **{section: replace(current, **{leaf: value})})

    def cache_payload(self) -> dict[str, Any]:
        """:meth:`to_dict` minus everything that cannot change results.

        Performance-only knobs — ``decoder.cache_size``, ``execution.workers``,
        ``execution.telemetry``, ``execution.fused``, ``execution.durable`` —
        and the cosmetic ``name`` are dropped, and component names are
        canonicalised through the registries (``mwpm`` -> ``matching``,
        ``always`` -> ``always-lrc``, case folded), so two configs that
        simulate the same physics produce the same payload no matter how
        they are spelled or executed.  The sweep engine's work-unit cache
        key is a digest of this payload.
        """
        payload = self.to_dict()
        payload.pop("name")
        payload["decoder"].pop("cache_size")
        payload["execution"].pop("workers")
        payload["execution"].pop("telemetry")
        payload["execution"].pop("fused")
        payload["execution"].pop("durable")
        payload["execution"].pop("serve_shards")
        payload["execution"].pop("serve_max_streams")
        payload["code"]["name"] = CODES.canonical(payload["code"]["name"])
        payload["decoder"]["name"] = DECODERS.canonical(payload["decoder"]["name"])
        payload["policy"]["name"] = POLICIES.canonical(payload["policy"]["name"])
        payload["noise"]["preset"] = NOISE_PRESETS.canonical(payload["noise"]["preset"])
        return payload

    def digest(self) -> str:
        """Content digest of :meth:`cache_payload` (hex SHA-256)."""
        canonical = json.dumps(self.cache_payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


# --------------------------------------------------------------------- #
# Section (de)serialization helpers
# --------------------------------------------------------------------- #
def _section_to_dict(section: Any) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for f in fields(section):
        value = getattr(section, f.name)
        out[f.name] = dict(value) if isinstance(value, dict) else value
    return out


def _section_from_dict(cls: type, data: Any, where: str) -> Any:
    if not isinstance(data, dict):
        raise ValueError(f"{where} config must be a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    for key in data:
        if key not in known:
            raise ValueError(_unknown_field_message(f"{where} config", key, sorted(known)))
    return cls(**data)


#: JSON-schema type names -> the Python types a config field may hold.
_JSON_TO_PY = {
    "string": (str,),
    "integer": (int,),
    "number": (int, float),
    "boolean": (bool,),
    "object": (dict,),
    "null": (type(None),),
}


def _check_section_types(section: Any, where: str) -> None:
    """Reject values of the wrong type with the offending field path.

    Overrides (``--set execution.shots=abc``) and hand-written JSON can put
    a string where an int belongs; failing here keeps the error a clean
    ``ValueError`` instead of a ``TypeError`` from deep inside a run.
    """
    hints = get_type_hints(type(section))
    for f in fields(section):
        value = getattr(section, f.name)
        names = _type_schema(hints[f.name]).get("type")
        if not names:
            continue
        if isinstance(names, str):
            names = [names]
        allowed = tuple(t for name in names for t in _JSON_TO_PY.get(name, ()))
        if not allowed:
            continue
        # bool subclasses int: only accept it where booleans are declared.
        ok = (
            bool in allowed
            if isinstance(value, bool)
            else isinstance(value, allowed)
        )
        if not ok:
            raise ValueError(
                f"{where}.{f.name} must be {' or '.join(names)}, got {value!r}"
            )


def _unknown_field_message(where: str, key: str, known: list[str]) -> str:
    message = f"unknown {where} field {key!r}"
    close = difflib.get_close_matches(key, known, n=3, cutoff=0.4)
    if close:
        message += f"; did you mean {', '.join(repr(c) for c in close)}?"
    message += f" (known: {', '.join(known)})"
    return message


# --------------------------------------------------------------------- #
# JSON schema
# --------------------------------------------------------------------- #
def _type_schema(annotation: Any) -> dict[str, Any]:
    """JSON-schema fragment for one (possibly optional) field annotation."""
    origin = get_origin(annotation)
    if origin is Union or isinstance(annotation, types.UnionType):
        args = get_args(annotation)
        non_null = [a for a in args if a is not type(None)]
        schemas = [_type_schema(a) for a in non_null]
        type_names: list[Any] = []
        for schema in schemas:
            entry = schema.get("type", "object")
            type_names.extend(entry if isinstance(entry, list) else [entry])
        if type(None) in args:
            type_names.append("null")
        return {"type": sorted(set(type_names), key=type_names.index)}
    if annotation is str:
        return {"type": "string"}
    if annotation is bool:
        return {"type": "boolean"}
    if annotation is int:
        return {"type": "integer"}
    if annotation is float:
        return {"type": "number"}
    if origin is dict or annotation is dict:
        return {"type": "object"}
    if is_dataclass(annotation):
        return _dataclass_schema(annotation)
    return {}


def _dataclass_schema(cls: type) -> dict[str, Any]:
    hints = get_type_hints(cls)
    properties: dict[str, Any] = {}
    for f in fields(cls):
        schema = _type_schema(hints[f.name])
        default = _field_default(f)
        if default is not _MISSING:
            schema = {**schema, "default": default}
        doc = _FIELD_ENUMS.get((cls.__name__, f.name))
        if doc is not None:
            schema["enum"] = doc()
        properties[f.name] = schema
    return {
        "type": "object",
        "description": (cls.__doc__ or "").strip().splitlines()[0],
        "properties": properties,
        "additionalProperties": False,
    }


_MISSING = object()


def _field_default(f: Any) -> Any:
    if f.default is not dataclasses.MISSING:
        return f.default
    if f.default_factory is not dataclasses.MISSING:
        value = f.default_factory()
        return dict(value) if isinstance(value, dict) else _MISSING
    return _MISSING


#: Registry-backed enumerations stamped into the schema so PR reviewers see
#: name-set drift as a schema diff.
_FIELD_ENUMS = {
    ("CodeConfig", "name"): CODES.names,
    ("DecoderConfig", "name"): DECODERS.names,
    ("PolicyConfig", "name"): POLICIES.names,
    ("NoiseConfig", "preset"): NOISE_PRESETS.names,
}


def config_schema() -> dict[str, Any]:
    """JSON schema of :class:`ExperimentConfig`, with registry-backed enums.

    Component-name fields are emitted as ``enum`` lists read from the live
    registries, so the schema artifact CI uploads makes any change to the
    registered name sets reviewable as a plain diff.
    """
    schema = _dataclass_schema(ExperimentConfig)
    schema["$schema"] = "https://json-schema.org/draft/2020-12/schema"
    schema["title"] = "repro ExperimentConfig"
    return schema
