"""Unified facade for driving the whole system.

Three layers, each usable on its own:

* :mod:`repro.api.registry` — decorator-based component registries
  (codes, decoders, policies, noise presets), the single source of truth
  for component names.
* :mod:`repro.api.config` — the serializable :class:`ExperimentConfig`
  dataclass tree (``to_dict`` / ``from_dict`` / JSON round-trip) with
  registry-backed validation and did-you-mean errors.
* :mod:`repro.api.session` — the :class:`Session` facade:
  ``Session.from_config(cfg).run()`` / ``.stream()`` / ``.sweep(axes=...)``
  routes one config to the offline, windowed-realtime or sweep execution
  paths.

Everything here is also reachable from the single CLI entry point::

    python -m repro list
    python -m repro run --config experiment.json --set decoder.name=union_find

Import-order note: the component-definition modules (``codes/surface.py``,
``decoders/matching.py``, ...) import :mod:`repro.api.registry` while the
``repro`` package is still initialising.  That is safe because every module
here keeps its repro-internal imports lazy (inside functions): initialising
this package pulls in nothing but the stdlib and the registry layer.
"""

from __future__ import annotations

from .config import (
    CodeConfig,
    DecoderConfig,
    ExecutionConfig,
    ExperimentConfig,
    NoiseConfig,
    PolicyConfig,
    config_schema,
)
from .registry import (
    CODES,
    DECODERS,
    NOISE_PRESETS,
    POLICIES,
    Registry,
    RegistryEntry,
    UnknownNameError,
    all_registries,
    register_code,
    register_decoder,
    register_noise,
    register_policy,
)
from .session import Session

__all__ = [
    # registries
    "Registry",
    "RegistryEntry",
    "UnknownNameError",
    "CODES",
    "DECODERS",
    "POLICIES",
    "NOISE_PRESETS",
    "register_code",
    "register_decoder",
    "register_policy",
    "register_noise",
    "all_registries",
    # config tree
    "CodeConfig",
    "NoiseConfig",
    "PolicyConfig",
    "DecoderConfig",
    "ExecutionConfig",
    "ExperimentConfig",
    "config_schema",
    # session facade
    "Session",
]
