"""Component registries: the single source of truth for component names.

Every pluggable component family of the system — QEC code constructions,
decoders, leakage-mitigation policies and noise presets — is registered in
one of the four module-level :class:`Registry` instances below.  The legacy
factories (:func:`repro.experiments.make_code`,
:func:`repro.decoders.make_decoder`, :func:`repro.core.make_policy`) are
thin lookups over these registries, the declarative
:class:`~repro.api.config.ExperimentConfig` validates against them, and the
``python -m repro list`` CLI prints them — so a name can never exist in one
place and be missing from another.

Third-party code extends the system without touching repro internals::

    from repro.api import register_code

    @register_code("my-lattice", default_distance=5)
    def my_lattice_code(distance):
        return build_my_code(distance)

    # make_code("my-lattice"), ExperimentConfig validation and the CLI all
    # see the new family immediately.

This module deliberately imports nothing from the rest of ``repro`` so the
component-definition modules can register themselves at import time without
creating cycles.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Registry",
    "RegistryEntry",
    "UnknownNameError",
    "CODES",
    "DECODERS",
    "POLICIES",
    "NOISE_PRESETS",
    "register_code",
    "register_decoder",
    "register_policy",
    "register_noise",
    "all_registries",
]


class UnknownNameError(ValueError):
    """Lookup of a name no component registered, with did-you-mean help."""


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its canonical name, builder and metadata."""

    name: str
    obj: Callable[..., Any]
    aliases: tuple[str, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def description(self) -> str:
        """One-line description: explicit metadata or the builder's docstring."""
        explicit = self.metadata.get("description")
        if explicit:
            return str(explicit)
        doc = (self.obj.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""


class Registry:
    """A named mapping of component names to builders.

    Names are canonicalised through ``normalize`` before every registration
    and lookup (the policy registry folds ``_`` to ``-``, the decoder
    registry folds ``-`` to ``_``, matching the historical factory
    behaviour).  Registration order is preserved: ``names()`` lists
    canonical names in the order components registered, which keeps derived
    listings (``POLICY_NAMES``, CLI output, docstrings) stable.
    """

    def __init__(
        self,
        kind: str,
        normalize: Callable[[str], str] | None = None,
        plural: str | None = None,
    ):
        self.kind = kind
        self.plural = plural or f"{kind}s"
        self._normalize = normalize or (lambda name: name.lower())
        self._entries: dict[str, RegistryEntry] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self, name: str, *, aliases: tuple[str, ...] = (), **metadata: Any
    ) -> Callable:
        """Decorator registering the decorated callable under ``name``.

        ``aliases`` are alternative lookup spellings (they resolve to the
        canonical entry but are not listed by :meth:`names`).  Arbitrary
        keyword ``metadata`` is stored on the entry for the factories to
        interpret (e.g. ``default_distance`` for code families).
        """

        def decorator(obj: Callable) -> Callable:
            self.add(name, obj, aliases=aliases, **metadata)
            return obj

        return decorator

    def add(
        self,
        name: str,
        obj: Callable,
        *,
        aliases: tuple[str, ...] = (),
        **metadata: Any,
    ) -> RegistryEntry:
        """Imperative registration (the decorator form calls this)."""
        key = self._normalize(name)
        if key in self._entries or key in self._aliases:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        entry = RegistryEntry(
            name=key, obj=obj, aliases=tuple(self._normalize(a) for a in aliases),
            metadata=dict(metadata),
        )
        self._entries[key] = entry
        for alias in entry.aliases:
            if alias in self._entries or alias in self._aliases:
                raise ValueError(f"{self.kind} alias {alias!r} is already registered")
            self._aliases[alias] = key
        return entry

    def unregister(self, name: str) -> None:
        """Remove a registration (primarily for tests of third-party plugins)."""
        key = self._normalize(name)
        entry = self._entries.pop(key, None)
        if entry is None:
            raise self.unknown(name)
        for alias in entry.aliases:
            self._aliases.pop(alias, None)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> RegistryEntry:
        """Resolve a (possibly aliased) name; raise with suggestions if unknown."""
        key = self._normalize(name)
        key = self._aliases.get(key, key)
        entry = self._entries.get(key)
        if entry is None:
            raise self.unknown(name)
        return entry

    def canonical(self, name: str) -> str:
        """Canonical spelling of a (possibly aliased) name.

        Unregistered names come back merely normalized — this never raises,
        so cache-key canonicalisation can run on arbitrary input.  Two
        spellings of the same registered component always map to one string.
        """
        key = self._normalize(name)
        return self._aliases.get(key, key)

    def __contains__(self, name: str) -> bool:
        key = self._normalize(name)
        return key in self._entries or key in self._aliases

    def __iter__(self) -> Iterator[RegistryEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        """Canonical names, in registration order."""
        return list(self._entries)

    def suggest(self, name: str) -> list[str]:
        """Close matches to a misspelled name (canonical names and aliases)."""
        known = list(self._entries) + list(self._aliases)
        return difflib.get_close_matches(self._normalize(name), known, n=3, cutoff=0.4)

    def unknown(self, name: str) -> UnknownNameError:
        """The error a failed lookup raises: did-you-mean plus the full listing."""
        message = f"unknown {self.kind} {name!r}"
        close = self.suggest(name)
        if close:
            message += f"; did you mean {', '.join(repr(c) for c in close)}?"
        message += f" (registered {self.plural}: {', '.join(self.names())})"
        return UnknownNameError(message)


#: QEC code families, looked up by :func:`repro.experiments.make_code`.
CODES = Registry("code family", plural="code families")

#: Decoder backends, looked up by :func:`repro.decoders.make_decoder`.
DECODERS = Registry("decoder method", normalize=lambda n: n.lower().replace("-", "_"))

#: Leakage-mitigation policies, looked up by :func:`repro.core.make_policy`.
POLICIES = Registry(
    "policy", normalize=lambda n: n.lower().replace("_", "-"), plural="policies"
)

#: Noise-parameter presets, looked up by ``NoiseConfig.preset``.
NOISE_PRESETS = Registry("noise preset")


def register_code(name: str, **kwargs: Any) -> Callable:
    """Register a code-family builder: ``builder(distance) -> StabilizerCode``.

    Metadata knobs: ``default_distance`` (used when no distance is given)
    and ``accepts_distance=False`` for families without a distance knob.
    """
    return CODES.register(name, **kwargs)


def register_decoder(name: str, **kwargs: Any) -> Callable:
    """Register a decoder class: ``cls(graph, cache=...) -> DecoderBase``.

    Pass ``tunable=True`` if the class accepts the matching-style
    ``max_exact_nodes`` / ``strategy`` keyword knobs.
    """
    return DECODERS.register(name, **kwargs)


def register_policy(name: str, **kwargs: Any) -> Callable:
    """Register a policy class: ``cls(**kwargs) -> LeakagePolicy``.

    Pass ``takes_config=True`` if the class accepts the graph-model
    ``config=`` keyword (the GLADIATOR family).
    """
    return POLICIES.register(name, **kwargs)


def register_noise(name: str, **kwargs: Any) -> Callable:
    """Register a noise preset: ``builder(**rates) -> NoiseParams``.

    Pass ``rate_parameters=True`` if the builder accepts the ``p`` /
    ``leakage_ratio`` keywords of :class:`~repro.api.config.NoiseConfig`.
    """
    return NOISE_PRESETS.register(name, **kwargs)


def all_registries() -> dict[str, Registry]:
    """The four component registries, keyed by a short section label."""
    return {
        "codes": CODES,
        "decoders": DECODERS,
        "policies": POLICIES,
        "noise": NOISE_PRESETS,
    }
