"""The Session facade: one config in, any execution path out.

A :class:`Session` validates an :class:`~repro.api.config.ExperimentConfig`,
builds the concrete components (code, noise, policy) through the registries,
and routes to whichever execution path the call names:

* :meth:`Session.run` — offline decoded memory experiment (or the
  sliding-window realtime decode path when ``execution.window_rounds`` is
  set, or an undecoded simulator run when ``execution.decoded`` is false);
* :meth:`Session.stream` — N concurrent syndrome streams through the
  :class:`~repro.realtime.DecodeService` thread pool;
* :meth:`Session.sweep` — a grid of configs compiled to
  :class:`~repro.sweeps.WorkUnit` jobs on the shared sweep executor.

Construction is shared with the internals: ``MemoryExperiment.from_config``,
the sweep engine's shard runner and ``DecodeService.from_config`` all build
through the module-level ``build_*`` helpers here, so a config means exactly
the same thing on every path — the bit-identity guarantee the tests pin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

from .config import ExperimentConfig
from .registry import NOISE_PRESETS, POLICIES

if TYPE_CHECKING:  # imported lazily at runtime to keep startup cheap
    from ..codes.base import StabilizerCode
    from ..core.speculator import LeakagePolicy
    from ..experiments.memory import MemoryExperiment, MemoryResult
    from ..noise import NoiseParams
    from ..realtime.accounting import StreamReport
    from ..sim import RunResult
    from ..sweeps.units import WorkUnit

__all__ = [
    "Session",
    "build_code",
    "build_noise",
    "build_policy",
    "build_experiment",
    "workunit_from_config",
]


# --------------------------------------------------------------------- #
# Component builders (shared by Session and the subsystem internals)
# --------------------------------------------------------------------- #
def build_code(config: ExperimentConfig | Any) -> "StabilizerCode":
    """Construct the configured code through the code registry.

    Delegates to :func:`repro.experiments.make_code` — the one place the
    registry's distance-default semantics live — so the Session path and
    the legacy factory path can never diverge.
    """
    section = config.code if isinstance(config, ExperimentConfig) else config
    from ..experiments.runner import make_code

    return make_code(section.name, section.distance)


def build_noise(config: ExperimentConfig | Any) -> "NoiseParams":
    """Construct the configured noise parameters through the preset registry."""
    section = config.noise if isinstance(config, ExperimentConfig) else config
    entry = NOISE_PRESETS.get(section.preset)
    kwargs: dict[str, Any] = {}
    if entry.metadata.get("rate_parameters", False):
        if section.p is not None:
            kwargs["p"] = section.p
        if section.leakage_ratio is not None:
            kwargs["leakage_ratio"] = section.leakage_ratio
    params = entry.obj(**kwargs)
    if section.overrides:
        params = params.with_(**section.overrides)
    return params


def build_policy(config: ExperimentConfig | Any) -> "LeakagePolicy":
    """Construct the configured policy through the policy registry."""
    section = config.policy if isinstance(config, ExperimentConfig) else config
    from ..core import make_policy

    if section.options:
        from ..core.graph_model import GraphModelConfig

        return make_policy(section.name, config=GraphModelConfig(**section.options))
    return make_policy(section.name)


def build_experiment(
    config: ExperimentConfig,
    *,
    code: "StabilizerCode | None" = None,
    policy: "LeakagePolicy | None" = None,
    noise: "NoiseParams | None" = None,
) -> "MemoryExperiment":
    """Construct a :class:`~repro.experiments.MemoryExperiment` from a config.

    ``code`` / ``policy`` / ``noise`` short-circuit the registry build when
    the caller already holds the objects (the sweep shard runner does, and
    legacy call sites pass explicit code instances) — the remaining knobs
    still come from the config, so both routes construct identically.
    """
    from ..experiments.memory import MemoryExperiment

    execution = config.execution
    return MemoryExperiment(
        code=code if code is not None else build_code(config),
        noise=noise if noise is not None else build_noise(config),
        policy=policy if policy is not None else build_policy(config),
        decoder_method=config.decoder.name,
        leakage_sampling=execution.effective_leakage_sampling,
        seed=execution.seed,
        window_rounds=execution.window_rounds,
        commit_rounds=execution.commit_rounds,
        decoder_max_exact_nodes=config.decoder.max_exact_nodes,
        decoder_strategy=config.decoder.strategy,
        decode_batch_size=execution.decode_batch_size,
        decoder_cache_size=config.decoder.cache_size,
        fused=execution.fused,
    )


def workunit_from_config(
    config: ExperimentConfig,
    labels: tuple[tuple[str, Any], ...] = (),
) -> "WorkUnit":
    """Compile a config into one sweep :class:`~repro.sweeps.WorkUnit`.

    The unit carries exactly the fields :func:`build_experiment` would read,
    so executing it (serially) is bit-identical to ``Session.run`` on the
    same config.
    """
    from ..core.graph_model import GraphModelConfig
    from ..sweeps.units import WorkUnit

    from ..api.registry import CODES, DECODERS

    execution = config.execution
    decoded = execution.decoded
    # Names are canonicalised (aliases resolved, case folded) so alias
    # spellings of the same experiment compile to identical units — and
    # therefore identical cache keys and shard seeds.
    return WorkUnit(
        family=CODES.canonical(config.code.name),
        distance=config.code.distance,
        noise=build_noise(config),
        policy=POLICIES.canonical(config.policy.name),
        shots=execution.shots,
        rounds=execution.rounds,
        decoded=decoded,
        leakage_sampling=execution.effective_leakage_sampling,
        decoder_method=DECODERS.canonical(config.decoder.name),
        decoder_max_exact_nodes=config.decoder.max_exact_nodes,
        decoder_strategy=config.decoder.strategy,
        window_rounds=execution.window_rounds if decoded else None,
        commit_rounds=execution.commit_rounds if decoded else None,
        decode_batch_size=execution.decode_batch_size if decoded else None,
        decoder_cache_size=config.decoder.cache_size if decoded else None,
        fused=execution.fused if decoded else False,
        seed=execution.seed,
        policy_config=(
            GraphModelConfig(**config.policy.options) if config.policy.options else None
        ),
        labels=labels,
    )


class Session:
    """Run, stream or sweep one validated experiment configuration."""

    def __init__(self, config: ExperimentConfig):
        self.config = config.validate()
        self._code: "StabilizerCode | None" = None
        self._noise: "NoiseParams | None" = None
        self._policy: "LeakagePolicy | None" = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(cls, config: ExperimentConfig | Mapping[str, Any]) -> "Session":
        """Build a session from a config object or its dict form."""
        if not isinstance(config, ExperimentConfig):
            config = ExperimentConfig.from_dict(dict(config))
        return cls(config)

    @classmethod
    def from_file(cls, path) -> "Session":
        """Build a session from a JSON config file."""
        return cls(ExperimentConfig.load(path))

    # ------------------------------------------------------------------ #
    # Resolved components (built once, lazily)
    # ------------------------------------------------------------------ #
    @property
    def code(self) -> "StabilizerCode":
        if self._code is None:
            self._code = build_code(self.config)
        return self._code

    @property
    def noise(self) -> "NoiseParams":
        if self._noise is None:
            self._noise = build_noise(self.config)
        return self._noise

    @property
    def policy(self) -> "LeakagePolicy":
        if self._policy is None:
            self._policy = build_policy(self.config)
        return self._policy

    def experiment(self) -> "MemoryExperiment":
        """The :class:`MemoryExperiment` this session's config describes."""
        return build_experiment(
            self.config, code=self.code, policy=self.policy, noise=self.noise
        )

    # ------------------------------------------------------------------ #
    # Execution paths
    # ------------------------------------------------------------------ #
    def run(
        self, shots: int | None = None, rounds: int | None = None
    ) -> "MemoryResult | RunResult":
        """Execute the config once, in-process.

        Decoded configs run the (offline or, when ``window_rounds`` is set,
        sliding-window) memory experiment and return a
        :class:`~repro.experiments.MemoryResult`; undecoded configs run the
        bare simulator and return a :class:`~repro.sim.RunResult`.
        ``shots`` / ``rounds`` override the config's execution budget.
        """
        execution = self.config.execution
        shots = execution.shots if shots is None else shots
        rounds = execution.rounds if rounds is None else rounds
        experiment = self.experiment()
        with self._telemetry():
            if execution.decoded:
                return experiment.run(shots=shots, rounds=rounds)
            return experiment.run_undecoded(shots=shots, rounds=rounds)

    def stream(
        self,
        streams: int = 1,
        *,
        workers: int = 4,
        queue_depth: int | None = None,
    ) -> "list[StreamReport]":
        """Decode ``streams`` live simulator streams through the decode service.

        Each stream simulates the configured experiment with seed
        ``execution.seed + 101 * stream_index`` (the convention of the
        legacy realtime CLI) and is window-decoded concurrently; requires
        ``execution.window_rounds``.
        """
        execution = self.config.execution
        if execution.window_rounds is None:
            raise ValueError(
                "Session.stream requires execution.window_rounds "
                "(set it in the config or via override)"
            )
        from ..realtime.service import DecodeService
        from ..realtime.stream import SimulatorStream

        simulator_streams = [
            SimulatorStream(
                code=self.code,
                noise=self.noise,
                # One policy instance per stream: streams decode concurrently
                # and policies carry per-run state.
                policy=build_policy(self.config),
                shots=execution.shots,
                rounds=execution.rounds,
                leakage_sampling=execution.effective_leakage_sampling,
                seed=execution.seed + 101 * index,
            )
            for index in range(streams)
        ]
        service = DecodeService.from_config(
            self.config, workers=workers, queue_depth=queue_depth
        )
        with self._telemetry():
            return service.run(simulator_streams)

    def sweep(
        self,
        axes: Mapping[str, Sequence[Any]] | None = None,
        *,
        executor=None,
    ) -> list[dict[str, Any]]:
        """Run a grid of configs on the shared sweep engine.

        ``axes`` maps dotted config paths to value sequences, e.g.
        ``{"code.distance": [3, 5], "policy.name": ["eraser+m",
        "gladiator+m"]}``.  The cartesian product is taken in insertion
        order, each point's summary row is labelled with the axis leaf
        names (``distance``, ``name``, ...), and execution inherits the
        engine's ``REPRO_WORKERS`` / ``REPRO_CACHE`` behaviour (or the
        config's ``execution.workers``).  With no axes the sweep is the
        single configured point.
        """
        units = self.work_units(axes)
        if executor is None:
            from ..sweeps.cache import SweepCache, default_cache_dir
            from ..sweeps.executor import SweepExecutor, cache_enabled

            cache = SweepCache(default_cache_dir()) if cache_enabled() else None
            if self.config.execution.durable:
                from ..fabric import FabricExecutor

                executor = FabricExecutor(
                    workers=self.config.execution.workers, cache=cache
                )
            else:
                executor = SweepExecutor(
                    workers=self.config.execution.workers, cache=cache
                )
        with self._telemetry():
            return executor.run_units(units)

    def work_units(
        self, axes: Mapping[str, Sequence[Any]] | None = None
    ) -> "list[WorkUnit]":
        """Compile the (config x axes) grid without executing it."""
        points: list[tuple[ExperimentConfig, tuple[tuple[str, Any], ...]]] = [
            (self.config, ())
        ]
        for path, values in (axes or {}).items():
            leaf = path.rsplit(".", 1)[-1]
            # Grid coordinates are stamped under the axis leaf (distance, p,
            # ...), matching the legacy sweep labels; ``name`` leaves keep
            # their section prefix (policy_name, code_name) so two name axes
            # never collide with each other or the row's display columns.
            label = path.replace(".", "_") if leaf == "name" else leaf
            points = [
                (config.override(path, value), labels + ((label, value),))
                for config, labels in points
                for value in values
            ]
        return [
            workunit_from_config(config.validate(), labels=labels)
            for config, labels in points
        ]

    def _telemetry(self):
        """The telemetry scope of one execution-path call.

        Resolves ``execution.telemetry`` / ``REPRO_TELEMETRY`` once per call
        and wraps the execution in :func:`repro.obs.telemetry_scope`; when
        nothing requests telemetry (the default) the scope is a no-op, and
        when an outer scope is already active this one joins it.
        """
        from ..obs import resolve_telemetry, telemetry_scope

        return telemetry_scope(resolve_telemetry(self.config), config=self.config)

    def __repr__(self) -> str:
        return f"Session(config={self.config.name!r})"
