"""Syndrome-extraction scheduling.

One QEC round consists of: ancilla reset, a sequence of entangling layers
(time slots) in which every ancilla interacts with one data qubit of its
support, and ancilla measurement.  The :class:`RoundSchedule` flattens the
per-stabilizer CNOT orders stored in the code into global time slots so the
simulator (and the cycle-time model) can execute the round layer by layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..codes.base import StabilizerCode

__all__ = ["CnotOperation", "RoundSchedule"]


@dataclass(frozen=True)
class CnotOperation:
    """One data-ancilla entangling gate inside a syndrome-extraction round."""

    stabilizer: int
    data_qubit: int
    time_slot: int
    basis: str

    @property
    def control_is_data(self) -> bool:
        """Z-type checks use the data qubit as CNOT control, X-type the ancilla."""
        return self.basis == "Z"


@dataclass
class RoundSchedule:
    """All entangling operations of one round, grouped by time slot."""

    code: StabilizerCode

    @cached_property
    def num_slots(self) -> int:
        """Number of entangling layers in one round."""
        return self.code.num_time_slots

    @cached_property
    def slots(self) -> list[list[CnotOperation]]:
        """Entangling operations grouped by time slot."""
        layers: list[list[CnotOperation]] = [[] for _ in range(self.num_slots)]
        for stab in self.code.stabilizers:
            for slot, data_qubit in zip(stab.slots, stab.data_support):
                layers[slot].append(
                    CnotOperation(
                        stabilizer=stab.index,
                        data_qubit=data_qubit,
                        time_slot=slot,
                        basis=stab.basis,
                    )
                )
        return layers

    @cached_property
    def operations(self) -> list[CnotOperation]:
        """All entangling operations of the round in execution order."""
        return [op for layer in self.slots for op in layer]

    @property
    def num_entangling_gates(self) -> int:
        """Total number of two-qubit gates per round."""
        return len(self.operations)

    def data_qubit_slots(self, data_qubit: int) -> list[tuple[int, int]]:
        """Time slots in which ``data_qubit`` is touched, as ``(slot, stabilizer)``."""
        return [
            (op.time_slot, op.stabilizer)
            for op in self.operations
            if op.data_qubit == data_qubit
        ]

    def validate(self) -> None:
        """Check that no qubit is used twice within one time slot."""
        for slot_index, layer in enumerate(self.slots):
            seen_data: set[int] = set()
            seen_anc: set[int] = set()
            for op in layer:
                if op.stabilizer in seen_anc:
                    raise ValueError(
                        f"ancilla {op.stabilizer} used twice in slot {slot_index}"
                    )
                seen_anc.add(op.stabilizer)
                # Data qubits may legitimately appear once per slot only.
                if op.data_qubit in seen_data:
                    raise ValueError(
                        f"data qubit {op.data_qubit} used twice in slot {slot_index}"
                    )
                seen_data.add(op.data_qubit)
