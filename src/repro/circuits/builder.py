"""Round-circuit assembly and cycle-time accounting.

The simulator executes rounds directly from the :class:`RoundSchedule`, but
benchmarks also need an explicit gate-level view of one QEC round to count
operations and to estimate cycle time as a function of how many LRCs a policy
inserts (Section 7.4 / Table 5 of the paper normalise QEC execution time by
rounds and shots, attributing the overhead to SWAP-based LRC latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..codes.base import StabilizerCode
from ..noise import NoiseParams
from .lrc import CNOT_LAYER_NS, MEASUREMENT_NS, LrcGadget, default_lrc
from .schedule import RoundSchedule

__all__ = ["Operation", "RoundCircuit", "CycleTimeModel"]


@dataclass(frozen=True)
class Operation:
    """One primitive operation of the round circuit."""

    kind: str  # "reset", "cnot", "measure", "lrc"
    qubits: tuple[int, ...]
    time_slot: int
    label: str = ""


@dataclass
class RoundCircuit:
    """Explicit operation list of one syndrome-extraction round."""

    code: StabilizerCode
    include_mlr: bool = False

    @cached_property
    def schedule(self) -> RoundSchedule:
        """The entangling-layer schedule underlying this circuit."""
        return RoundSchedule(self.code)

    @cached_property
    def operations(self) -> list[Operation]:
        """Reset, entangling and measurement operations in execution order."""
        ops: list[Operation] = []
        for stab in self.code.stabilizers:
            ops.append(Operation(kind="reset", qubits=(stab.index,), time_slot=0))
        for slot_index, layer in enumerate(self.schedule.slots):
            for cnot in layer:
                ops.append(
                    Operation(
                        kind="cnot",
                        qubits=(cnot.data_qubit, cnot.stabilizer),
                        time_slot=slot_index + 1,
                        label=cnot.basis,
                    )
                )
        measure_slot = self.schedule.num_slots + 1
        for stab in self.code.stabilizers:
            ops.append(
                Operation(
                    kind="measure",
                    qubits=(stab.index,),
                    time_slot=measure_slot,
                    label="mlr" if self.include_mlr else "standard",
                )
            )
        return ops

    @property
    def num_entangling_gates(self) -> int:
        """Two-qubit gate count of one round (excluding LRCs)."""
        return sum(1 for op in self.operations if op.kind == "cnot")

    @property
    def depth(self) -> int:
        """Number of time slots in one round (reset + entangling layers + measure)."""
        return self.schedule.num_slots + 2

    def base_duration_ns(self) -> float:
        """Wall-clock duration of one LRC-free round."""
        return self.schedule.num_slots * CNOT_LAYER_NS + MEASUREMENT_NS


@dataclass
class CycleTimeModel:
    """Estimate QEC cycle time as a function of LRC usage.

    LRC gadgets on data qubits cannot overlap with the next round's
    entangling layers, so every round in which at least one LRC fires is
    stretched by the gadget latency; the per-round average stretch scales
    with how many of the code's colour groups (independent LRC batches) are
    exercised.  This reproduces the paper's observation that Always-LRC adds
    ~20% execution depth at d=11 while GLADIATOR adds ~0.4%.
    """

    code: StabilizerCode
    noise: NoiseParams = field(default_factory=NoiseParams)
    gadget: LrcGadget = field(default_factory=default_lrc)

    @cached_property
    def circuit(self) -> RoundCircuit:
        """The LRC-free round circuit this model stretches."""
        return RoundCircuit(self.code)

    def lrc_overhead_ns(self, lrcs_per_round: float) -> float:
        """Average per-round latency added by ``lrcs_per_round`` LRC gadgets.

        LRC gadgets on distinct qubits execute in parallel control hardware,
        so the per-LRC latency is amortised over the data-qubit count; the
        model is linear in the LRC rate, which reproduces the paper's
        observation that the execution-depth overhead ratio between
        Always-LRC and GLADIATOR tracks their LRC-count ratio (~50x at d=11).
        """
        if lrcs_per_round < 0:
            raise ValueError("lrcs_per_round must be non-negative")
        return lrcs_per_round * self.gadget.latency_ns / max(1, self.code.num_data)

    def round_duration_ns(self, lrcs_per_round: float) -> float:
        """Average round duration when ``lrcs_per_round`` LRCs fire per round."""
        return self.circuit.base_duration_ns() + self.lrc_overhead_ns(lrcs_per_round)

    def relative_depth_overhead(self, lrcs_per_round: float) -> float:
        """Fractional execution-depth increase caused by LRC insertion."""
        return self.lrc_overhead_ns(lrcs_per_round) / self.circuit.base_duration_ns()

    def total_execution_ns(self, lrcs_per_round: float, rounds: int) -> float:
        """Total execution time of ``rounds`` QEC rounds."""
        return self.round_duration_ns(lrcs_per_round) * rounds
