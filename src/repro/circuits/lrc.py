"""Leakage Reduction Circuit (LRC) gadget taxonomy (Section 2.4 of the paper).

Each gadget converts leakage back into the computational subspace at some
cost: extra entangling gates (hence extra depolarising error and extra
opportunities to leak) and extra latency that stretches the QEC cycle.  The
classes here capture those costs so policies and the cycle-time model can be
compared on equal footing; the physics of "leakage removed, random Pauli left
behind" is applied by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..noise import NoiseParams

__all__ = [
    "LrcGadget",
    "SwapLrc",
    "ResetLrc",
    "DqlrLrc",
    "default_lrc",
    "LRC_GADGETS",
]

#: Approximate latency of one entangling gate plus measurement on a
#: superconducting platform, in nanoseconds; 100 ns is the budget the paper
#: quotes for four CNOTs, so a single CNOT layer is ~25 ns.
CNOT_LAYER_NS = 25.0
MEASUREMENT_NS = 300.0


@dataclass(frozen=True)
class LrcGadget:
    """Cost model of one leakage-reduction gadget applied to one qubit.

    Attributes
    ----------
    name:
        Gadget family name.
    extra_entangling_gates:
        Number of additional two-qubit gates the gadget inserts.
    latency_ns:
        Wall-clock time the gadget adds to the round when scheduled.
    error_factor:
        Depolarising error added to the treated qubit, as a multiple of the
        physical error rate ``p``.
    leak_factor:
        Leakage the gadget itself can induce, as a multiple of ``p_leak``.
    removal_prob:
        Probability that a genuinely leaked qubit is returned to the
        computational subspace.
    needs_ancilla:
        Whether the gadget consumes an extra helper qubit (SWAP-based resets
        offload the leaked state to a neighbour).
    """

    name: str
    extra_entangling_gates: int
    latency_ns: float
    error_factor: float
    leak_factor: float
    removal_prob: float
    needs_ancilla: bool = False

    def gate_error(self, noise: NoiseParams) -> float:
        """Depolarising error probability this gadget adds under ``noise``."""
        return min(0.5, self.error_factor * noise.p)

    def induced_leakage(self, noise: NoiseParams) -> float:
        """Leakage probability this gadget itself introduces under ``noise``."""
        return self.leak_factor * noise.p_leak

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.name}: +{self.extra_entangling_gates} 2q gates, "
            f"{self.latency_ns:.0f} ns, removal {self.removal_prob:.0%}"
        )


class SwapLrc(LrcGadget):
    """SWAP-based LRC: swap the (possibly leaked) qubit with a reset neighbour."""

    def __init__(self) -> None:
        super().__init__(
            name="swap",
            extra_entangling_gates=3,
            latency_ns=3 * CNOT_LAYER_NS + MEASUREMENT_NS,
            error_factor=2.0,
            leak_factor=1.0,
            removal_prob=1.0,
            needs_ancilla=True,
        )


class ResetLrc(LrcGadget):
    """Conditional-reset LRC: measure-and-reset style gadget."""

    def __init__(self) -> None:
        super().__init__(
            name="reset",
            extra_entangling_gates=1,
            latency_ns=CNOT_LAYER_NS + MEASUREMENT_NS,
            error_factor=1.5,
            leak_factor=1.0,
            removal_prob=0.95,
            needs_ancilla=True,
        )


class DqlrLrc(LrcGadget):
    """DQLR-style LRC: a Leakage-iSWAP to a fast-reset qubit (specialised hardware)."""

    def __init__(self) -> None:
        super().__init__(
            name="dqlr",
            extra_entangling_gates=1,
            latency_ns=CNOT_LAYER_NS + 50.0,
            error_factor=1.0,
            leak_factor=0.5,
            removal_prob=0.99,
            needs_ancilla=True,
        )


LRC_GADGETS: dict[str, LrcGadget] = {
    "swap": SwapLrc(),
    "reset": ResetLrc(),
    "dqlr": DqlrLrc(),
}


def default_lrc() -> LrcGadget:
    """The SWAP-based gadget, the paper's default assumption for cycle-time costs."""
    return LRC_GADGETS["swap"]
