"""Syndrome-extraction circuits, schedules, and LRC gadget models."""

from .builder import CycleTimeModel, Operation, RoundCircuit
from .lrc import LRC_GADGETS, DqlrLrc, LrcGadget, ResetLrc, SwapLrc, default_lrc
from .schedule import CnotOperation, RoundSchedule

__all__ = [
    "RoundSchedule",
    "CnotOperation",
    "RoundCircuit",
    "Operation",
    "CycleTimeModel",
    "LrcGadget",
    "SwapLrc",
    "ResetLrc",
    "DqlrLrc",
    "default_lrc",
    "LRC_GADGETS",
]
