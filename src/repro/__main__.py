"""The single top-level CLI: ``python -m repro <command>``.

Four subcommands drive every execution path of the system from one
declarative :class:`~repro.api.config.ExperimentConfig`:

* ``list`` — every registered component (code families, decoders, policies,
  noise presets) and sweep preset, straight from the registries;
* ``run`` — one offline (or, with ``execution.window_rounds``, sliding-window
  realtime) experiment;
* ``sweep`` — either a named preset (the legacy ``python -m repro.sweeps``
  workloads) or a config-driven grid via repeated ``--axis``;
* ``realtime`` — N concurrent simulator streams through the decode service;
* ``serve`` — the network decode server (``repro.serve``): sharded workers
  behind a TCP frame protocol (optionally a websocket gateway), e.g.::

    python -m repro serve --port 7571 --shards 4
    python -m repro serve --status --port 7571   # live SLO snapshot

* ``fuzz`` — the registry-driven scenario-matrix fuzzer, e.g.::

    python -m repro fuzz --budget smoke --report fuzz_report.json
    python -m repro fuzz --cells 'toric/*' --cells '*/floods/*' --seed 3

``run``, ``sweep`` and ``realtime`` all accept ``--config file.json`` plus
dotted overrides, e.g.::

    python -m repro run --config experiment.json --set decoder.name=union_find
    python -m repro sweep --config experiment.json --axis code.distance=3,5,7
    python -m repro realtime --config experiment.json --streams 8 --workers 4

Override values parse as JSON (``--set execution.shots=500`` is an int,
``--set execution.window_rounds=null`` clears a field) and fall back to
plain strings, so ``--set policy.name=gladiator+m`` also works.

The legacy entry points ``python -m repro.sweeps`` and
``python -m repro.realtime`` keep working but emit a one-time
``DeprecationWarning`` pointing here.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from .api.config import ExperimentConfig
from .api.registry import all_registries

__all__ = ["main"]


# --------------------------------------------------------------------- #
# Config loading: --config file plus dotted --set overrides
# --------------------------------------------------------------------- #
def _parse_value(raw: str) -> Any:
    """JSON literal when possible (numbers, bools, null), else the raw string."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _split_assignment(raw: str, flag: str) -> tuple[str, str]:
    if "=" not in raw:
        raise ValueError(f"{flag} expects PATH=VALUE, got {raw!r}")
    path, _, value = raw.partition("=")
    return path.strip(), value.strip()


def _load_config(args: argparse.Namespace) -> ExperimentConfig:
    config = (
        ExperimentConfig.load(args.config)
        if getattr(args, "config", None)
        else ExperimentConfig()
    )
    for raw in getattr(args, "overrides", None) or []:
        path, value = _split_assignment(raw, "--set")
        config = config.override(path, _parse_value(value))
    if getattr(args, "trace", None):
        # The CLI flag wins over both the config field and REPRO_TELEMETRY.
        config = config.override("execution.telemetry", args.trace)
    return config.validate()


def _parse_axes(raw_axes: list[str]) -> dict[str, list[Any]]:
    axes: dict[str, list[Any]] = {}
    for raw in raw_axes:
        path, values = _split_assignment(raw, "--axis")
        axes[path] = [_parse_value(v) for v in values.split(",") if v != ""]
        if not axes[path]:
            raise ValueError(f"--axis {path} has no values")
    return axes


# --------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------- #
def _cmd_list(args: argparse.Namespace) -> int:
    from .sweeps.registry import SWEEP_GROUPS, sweep_names

    if args.json:
        payload = {
            section: {
                entry.name: {
                    "aliases": list(entry.aliases),
                    "description": entry.description,
                    **entry.metadata,
                }
                for entry in registry
            }
            for section, registry in all_registries().items()
        }
        payload["sweeps"] = {
            group: sorted(names) for group, names in sorted(SWEEP_GROUPS.items())
        }
        print(json.dumps(payload, indent=2, default=str))
        return 0

    for section, registry in all_registries().items():
        print(f"{section} ({registry.plural}):")
        for entry in registry:
            line = f"  {entry.name}"
            if entry.aliases:
                line += f" (aliases: {', '.join(entry.aliases)})"
            if entry.description:
                line += f" — {entry.description}"
            print(line)
    print("sweep presets:")
    grouped: set[str] = set()
    for group in sorted(SWEEP_GROUPS):
        for name in sorted(SWEEP_GROUPS[group]):
            print(f"  {name} [{group}]")
            grouped.add(name)
    for name in sweep_names():
        if name not in grouped:
            print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .api.session import Session
    from .io import ResultRecord, format_table, results_dir, save_records

    config = _load_config(args)
    session = Session.from_config(config)
    started = time.perf_counter()
    result = session.run()
    elapsed = time.perf_counter() - started

    row = result.summary()
    display = {k: v for k, v in row.items() if not hasattr(v, "shape")}
    print(format_table([display], title=config.name))
    print(f"1 run in {elapsed:.2f}s")

    out = args.out
    if out is None and args.results_dir is not None:
        out = results_dir(args.results_dir) / f"run_{config.name}.json"
    if out is not None:
        record = ResultRecord(
            experiment=f"run_{config.name}",
            parameters=config.to_dict(),
            metrics=row,
        )
        path = save_records([record], out)
        print(f"wrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.preset is not None:
        if args.config or args.overrides or args.axes:
            print(
                "error: pass either a named preset or --config/--set/--axis, not both",
                file=sys.stderr,
            )
            return 2
        if args.distributed:
            print(
                "error: --distributed needs the config-driven form "
                "(--config/--set/--axis), not a named preset",
                file=sys.stderr,
            )
            return 2
        from .obs import resolve_telemetry, telemetry_scope
        from .sweeps.__main__ import run as run_named_sweep

        forwarded: list[str] = [args.preset]
        if args.workers is not None:
            forwarded += ["--workers", str(args.workers)]
        if args.no_cache:
            forwarded.append("--no-cache")
        if args.out is not None:
            forwarded += ["--out", args.out]
        if args.results_dir is not None:
            forwarded += ["--results-dir", args.results_dir]
        # Named presets bypass Session, so the scope is opened here.
        with telemetry_scope(
            resolve_telemetry(None, args.trace),
            manifest_extra={"sweep_preset": args.preset},
        ):
            return run_named_sweep(forwarded)

    from .api.session import Session
    from .io import ResultRecord, format_table, results_dir, save_records
    from .sweeps.cache import SweepCache, default_cache_dir
    from .sweeps.executor import SweepExecutor

    config = _load_config(args)
    if args.workers is not None:
        config = config.override("execution.workers", args.workers)
    if args.distributed:
        config = config.override("execution.durable", True)
    session = Session.from_config(config)
    axes = _parse_axes(args.axes or [])
    # Same memoization behaviour as the preset branch: the CLI caches to
    # disk by default and --no-cache disables it (the library-level
    # Session.sweep default stays opt-in via REPRO_CACHE).
    cache = None if args.no_cache else SweepCache(default_cache_dir())
    executor: Any
    if config.execution.durable:
        # The durable fabric: journaled tasks, leases, crash-safe resume.
        # Re-running the same command after a crash resumes from the
        # journal under .repro_cache/fabric/ and merges bit-identically.
        from .fabric import FabricExecutor

        executor = FabricExecutor(workers=config.execution.workers, cache=cache)
    else:
        executor = SweepExecutor(workers=config.execution.workers, cache=cache)

    started = time.perf_counter()
    rows = session.sweep(axes, executor=executor)
    elapsed = time.perf_counter() - started

    display = [
        {k: v for k, v in row.items() if not hasattr(v, "shape")} for row in rows
    ]
    print(format_table(display, title=config.name))
    summary = (
        f"{len(rows)} rows in {elapsed:.2f}s "
        f"({executor.units_computed} computed, {executor.units_from_cache} cached)"
    )
    if config.execution.durable:
        summary += (
            f" [durable: {executor.shards_executed} shards run, "
            f"{executor.shards_from_checkpoint} from checkpoints, "
            f"{executor.shards_retried} retried, "
            f"{executor.shards_quarantined} quarantined]"
        )
    print(summary)
    for unit, error in getattr(executor, "failed_units", []):
        print(
            f"warning: unit {unit.family}/{unit.policy} degraded: "
            f"{error.strip().splitlines()[-1]}",
            file=sys.stderr,
        )

    out = args.out
    if out is None:
        out = results_dir(args.results_dir) / f"sweep_{config.name}.json"
    records = [
        ResultRecord(
            experiment=f"sweep_{config.name}",
            parameters={"config": config.to_dict(), "axes": axes},
            metrics=row,
        )
        for row in rows
    ]
    path = save_records(records, out)
    print(f"wrote {path}")
    return 0


def _cmd_realtime(args: argparse.Namespace) -> int:
    from .api.session import Session
    from .io import ResultRecord, format_table, results_dir, save_records

    if args.streams <= 0 or args.workers <= 0:
        print("error: streams and workers must be positive", file=sys.stderr)
        return 2
    config = _load_config(args)
    if config.execution.window_rounds is None:
        print(
            "error: realtime needs execution.window_rounds "
            "(e.g. --set execution.window_rounds=8)",
            file=sys.stderr,
        )
        return 2
    session = Session.from_config(config)
    started = time.perf_counter()
    reports = session.stream(
        args.streams, workers=args.workers, queue_depth=args.queue_depth
    )
    elapsed = time.perf_counter() - started

    rows = [report.summary() for report in reports]
    print(format_table(rows, title=config.name))
    total_rounds = sum(report.rounds for report in reports)
    print(
        f"{len(reports)} streams ({total_rounds} stream-rounds) in {elapsed:.2f}s "
        f"({len(reports) / max(elapsed, 1e-9):.2f} streams/s, {args.workers} workers)"
    )

    out = args.out
    if out is None and args.results_dir is not None:
        out = results_dir(args.results_dir) / f"realtime_{config.name}.json"
    if out is not None:
        records = [
            ResultRecord(
                experiment=f"realtime_{config.name}",
                parameters={"config": config.to_dict(), "streams": args.streams},
                metrics=row,
            )
            for row in rows
        ]
        path = save_records(records, out)
        print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    if args.status:
        from .serve.client import ServeClient

        async def fetch() -> dict:
            async with ServeClient() as client:
                await client.connect(args.host, args.port, tenant="status")
                return await client.status()

        try:
            print(json.dumps(asyncio.run(fetch()), indent=2, sort_keys=True))
        except (ConnectionError, OSError) as exc:
            print(f"error: cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
            return 2
        return 0

    from .serve import DecodeServer, ServerConfig, WebSocketGateway

    config = _load_config(args)
    execution = config.execution
    server_config = ServerConfig(
        host=args.host,
        port=args.port,
        shards=args.shards if args.shards is not None else (execution.serve_shards or 2),
        workers_per_shard=args.workers_per_shard,
        queue_depth=args.queue_depth,
        max_streams=(
            args.max_streams
            if args.max_streams is not None
            else (execution.serve_max_streams or 256)
        ),
        max_streams_per_tenant=args.max_streams_per_tenant,
        tenant_rate=args.tenant_rate,
        window_rounds=execution.window_rounds or 4,
        commit_rounds=execution.commit_rounds,
        method=config.decoder.name,
        strategy=config.decoder.strategy,
        cache_size=config.decoder.cache_size,
        fused=not args.no_fused,
        coalesce=not args.no_coalesce,
    )

    async def serve() -> None:
        server = DecodeServer(server_config)
        await server.start()
        gateway = None
        if args.websocket is not None:
            gateway = WebSocketGateway(server, host=args.host, port=args.websocket)
            await gateway.start()
        banner = f"serving on {args.host}:{server.port}"
        if gateway is not None:
            banner += f" (websocket on {gateway.port})"
        banner += (
            f" — {server_config.shards} shards x "
            f"{server_config.workers_per_shard} workers, "
            f"admission cap {server_config.max_streams}"
        )
        print(banner, flush=True)
        try:
            if args.serve_seconds is not None:
                await asyncio.sleep(args.serve_seconds)
            else:
                assert server._server is not None
                await server._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            if gateway is not None:
                await gateway.stop()
            await server.shutdown()
            status = server.status()
            status.pop("shards", None)
            print(json.dumps(status, indent=2, sort_keys=True))

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .fuzz import enumerate_cells, run_fuzz
    from .obs import resolve_telemetry, telemetry_scope

    patterns = args.cells or None
    if patterns and not enumerate_cells(patterns=patterns):
        print(f"error: no scenario cells match {patterns}", file=sys.stderr)
        return 2
    # manifest_extra is read when the scope exits, so the fuzz outcome
    # filled in below lands in the manifest.
    manifest_extra: dict[str, Any] = {"fuzz": None}
    with telemetry_scope(
        resolve_telemetry(None, args.trace), manifest_extra=manifest_extra
    ):
        report = run_fuzz(
            seed=args.seed,
            budget=args.budget,
            patterns=patterns,
            progress=lambda line: print(line, file=sys.stderr),
        )
        summary = report.to_dict()
        del summary["results"]
        manifest_extra["fuzz"] = summary
    if args.report is not None:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json())
        print(f"wrote {path}")
    for result in report.crashes + report.violations:
        print(f"  {result.status}: {result.cell}", file=sys.stderr)
        for violation in result.violations:
            print(f"    {violation}", file=sys.stderr)
        if result.error is not None:
            print(f"    {result.error}", file=sys.stderr)
    print(report.describe())
    return 0 if report.ok else 1


# --------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------- #
def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", default=None, help="ExperimentConfig JSON file")
    parser.add_argument(
        "--set",
        action="append",
        dest="overrides",
        default=[],
        metavar="PATH=VALUE",
        help="dotted config override, e.g. --set decoder.name=union_find",
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--results-dir", default=None, help="directory for the default output path"
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON (plus .jsonl event log and "
        ".manifest.json provenance) of the run to PATH",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Drive the leakage-speculation system from one config.",
    )
    sub = parser.add_subparsers(dest="command")

    list_parser = sub.add_parser(
        "list", help="list registered components and sweep presets"
    )
    list_parser.add_argument("--json", action="store_true", help="machine-readable form")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = sub.add_parser("run", help="run one experiment from a config")
    _add_config_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="run a named sweep preset or a config-driven grid"
    )
    sweep_parser.add_argument(
        "preset", nargs="?", default=None, help="named preset (see `python -m repro list`)"
    )
    sweep_parser.add_argument(
        "--axis",
        action="append",
        dest="axes",
        default=[],
        metavar="PATH=V1,V2,...",
        help="grid axis over a config field, e.g. --axis code.distance=3,5,7",
    )
    sweep_parser.add_argument("--workers", type=int, default=None, help="process-pool size")
    sweep_parser.add_argument("--no-cache", action="store_true", help="disable memoization")
    sweep_parser.add_argument(
        "--distributed",
        action="store_true",
        help="run through the durable fabric (journaled shards, leases, "
        "crash-safe resume); re-run the same command to resume after a crash",
    )
    _add_config_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    realtime_parser = sub.add_parser(
        "realtime", help="decode concurrent streams through sliding windows"
    )
    realtime_parser.add_argument(
        "--streams", type=int, default=4, help="concurrent streams (default: 4)"
    )
    realtime_parser.add_argument(
        "--workers", type=int, default=4, help="decode worker threads (default: 4)"
    )
    realtime_parser.add_argument(
        "--queue-depth", type=int, default=None, help="pending-window queue bound"
    )
    _add_config_arguments(realtime_parser)
    realtime_parser.set_defaults(handler=_cmd_realtime)

    serve_parser = sub.add_parser(
        "serve", help="serve decode streams over the network (repro.serve)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind/connect host")
    serve_parser.add_argument(
        "--port", type=int, default=7571, help="TCP port (default: 7571; 0 picks free)"
    )
    serve_parser.add_argument(
        "--websocket",
        type=int,
        default=None,
        metavar="PORT",
        help="also expose a websocket gateway on PORT (0 picks free)",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="decode shards (default: execution.serve_shards, else 2)",
    )
    serve_parser.add_argument(
        "--workers-per-shard", type=int, default=2, help="worker threads per shard"
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=None, help="pending-window queue bound per shard"
    )
    serve_parser.add_argument(
        "--max-streams",
        type=int,
        default=None,
        help="admission cap (default: execution.serve_max_streams, else 256)",
    )
    serve_parser.add_argument(
        "--max-streams-per-tenant", type=int, default=64, help="per-tenant admission cap"
    )
    serve_parser.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        help="per-tenant token-bucket rate in round chunks/s (default: unmetered)",
    )
    serve_parser.add_argument(
        "--no-coalesce", action="store_true", help="disable cross-stream batch coalescing"
    )
    serve_parser.add_argument(
        "--no-fused", action="store_true", help="decode through unpacked window sessions"
    )
    serve_parser.add_argument(
        "--serve-seconds",
        type=float,
        default=None,
        help="serve for this long, then drain and exit (CI smoke mode)",
    )
    serve_parser.add_argument(
        "--status",
        action="store_true",
        help="connect to a running server and print its live SLO snapshot",
    )
    _add_config_arguments(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    fuzz_parser = sub.add_parser(
        "fuzz", help="fuzz every registered scenario combination"
    )
    fuzz_parser.add_argument(
        "--cells",
        action="append",
        default=[],
        metavar="GLOB",
        help="restrict to cells matching code/decoder/policy/noise/mode globs "
        "(repeatable), e.g. --cells 'toric/*' --cells '*/floods/*'",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0, help="matrix-wide instance seed (default: 0)"
    )
    fuzz_parser.add_argument(
        "--budget",
        default="smoke",
        help="'smoke' (all cells, subsampled statistics), 'full' "
        "(all cells, all tiers) or an integer cell count (default: smoke)",
    )
    fuzz_parser.add_argument(
        "--report", default=None, metavar="PATH", help="write the JSON report here"
    )
    fuzz_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON of the fuzz run to PATH",
    )
    fuzz_parser.set_defaults(handler=_cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "handler", None) is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
