"""Bring-your-own code: GLADIATOR on a user-defined CSS code.

GLADIATOR's offline stage only needs the stabilizer structure of the code
and calibrated error rates, so it extends to codes the authors never
hard-coded.  This example builds a hypergraph-product code from two copies
of a classical Hamming code, inspects the per-qubit pattern tables the graph
model produces, prints the minimised Boolean expression the hardware
sequence checker would implement, and runs a short leakage simulation.

Run with::

    python examples/custom_code_speculation.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import make_policy, paper_noise
from repro.codes import hgp_code_from_checks
from repro.codes.classical import hamming_parity_check
from repro.core import GladiatorPolicy, expression_to_string, quine_mccluskey
from repro.io import format_table
from repro.sim import LeakageSimulator, SimulatorOptions


def main() -> None:
    hamming = hamming_parity_check()
    code = hgp_code_from_checks(hamming, hamming, name="hgp_hamming7")
    noise = paper_noise()
    print(code.describe())

    # Offline stage: build the pattern tables and show one of them.
    gladiator = GladiatorPolicy()
    gladiator.prepare(code, noise)
    widths = sorted(set(code.pattern_widths))
    rows = []
    for width in widths:
        qubit = next(q for q in range(code.num_data) if code.pattern_width(q) == width)
        table = gladiator.flag_table(qubit)
        rows.append(
            {
                "pattern width": width,
                "patterns flagged": f"{int(table.sum())}/{table.shape[0]}",
            }
        )
    print(format_table(rows, title="GLADIATOR pattern tables for the HGP code"))

    narrow_qubit = next(q for q in range(code.num_data) if code.pattern_width(q) == min(widths))
    table = gladiator.flag_table(narrow_qubit)
    minterms = {value for value in range(table.shape[0]) if table[value]}
    implicants = quine_mccluskey(minterms, min(widths))
    print("\nSequence-checker expression for the narrowest qubits:")
    print("  " + expression_to_string(implicants, min(widths)))

    # Online stage: run the speculative mitigation against ERASER.
    comparison = []
    for policy_name in ("eraser+m", "gladiator+m"):
        simulator = LeakageSimulator(
            code=code,
            noise=noise,
            policy=make_policy(policy_name),
            options=SimulatorOptions(leakage_sampling=True),
            seed=3,
        )
        summary = simulator.run(shots=300, rounds=40).summary()
        comparison.append(
            {
                "policy": summary["policy"],
                "LRCs/round": summary["lrcs_per_round"],
                "false positives/round": summary["fp_per_round"],
                "mean leakage population": summary["mean_dlp"],
            }
        )
    print()
    print(format_table(comparison, title="Speculative mitigation on the HGP code"))


if __name__ == "__main__":
    main()
