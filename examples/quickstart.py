"""Quickstart: speculative leakage mitigation on a distance-5 surface code.

Builds the rotated surface code, attaches the GLADIATOR+M speculator, runs a
short leakage-aware memory simulation and prints the headline metrics next
to the ERASER+M baseline.

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import make_policy, paper_noise, surface_code
from repro.io import format_table
from repro.sim import LeakageSimulator, SimulatorOptions


def main() -> None:
    code = surface_code(5)
    noise = paper_noise(p=1e-3, leakage_ratio=0.1)
    print(code.describe())
    print(f"noise: {noise.describe()}")
    print()

    rows = []
    for policy_name in ("eraser+m", "gladiator+m", "gladiator-d+m", "ideal"):
        policy = make_policy(policy_name)
        simulator = LeakageSimulator(
            code=code,
            noise=noise,
            policy=policy,
            options=SimulatorOptions(leakage_sampling=True),
            seed=7,
        )
        result = simulator.run(shots=400, rounds=50)
        summary = result.summary()
        rows.append(
            {
                "policy": summary["policy"],
                "LRCs/round": summary["lrcs_per_round"],
                "false positives/round": summary["fp_per_round"],
                "false negatives/round": summary["fn_per_round"],
                "mean leakage population": summary["mean_dlp"],
            }
        )
    print(format_table(rows, title="Leakage speculation on the d=5 surface code"))
    print()
    print(
        "GLADIATOR inserts fewer leakage-reduction circuits than ERASER by"
        " skipping syndrome patterns that ordinary Pauli noise explains."
    )


if __name__ == "__main__":
    main()
