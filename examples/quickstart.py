"""Quickstart: speculative leakage mitigation on a distance-5 surface code.

One declarative :class:`repro.ExperimentConfig` describes the workload
(code, noise, policy, budget); a :class:`repro.Session` builds everything
through the component registries and runs it.  Sweeping the policy is one
``override`` per point — no simulator plumbing.

Run with::

    python examples/quickstart.py

The same config drives the CLI: save it with ``cfg.save("q.json")`` and run
``python -m repro run --config q.json --set policy.name=eraser+m``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, Session
from repro.io import format_table


def main() -> None:
    base = ExperimentConfig.from_dict(
        {
            "name": "quickstart",
            "code": {"name": "surface", "distance": 5},
            "noise": {"preset": "paper", "p": 1e-3, "leakage_ratio": 0.1},
            "execution": {
                "shots": 400,
                "rounds": 50,
                "seed": 7,
                "decoded": False,  # leakage-population study, no decoder
                "leakage_sampling": True,
            },
        }
    )
    session = Session.from_config(base)
    print(session.code.describe())
    print(f"noise: {session.noise.describe()}")
    print()

    rows = []
    for policy_name in ("eraser+m", "gladiator+m", "gladiator-d+m", "ideal"):
        config = base.override("policy.name", policy_name)
        summary = Session.from_config(config).run().summary()
        rows.append(
            {
                "policy": summary["policy"],
                "LRCs/round": summary["lrcs_per_round"],
                "false positives/round": summary["fp_per_round"],
                "false negatives/round": summary["fn_per_round"],
                "mean leakage population": summary["mean_dlp"],
            }
        )
    print(format_table(rows, title="Leakage speculation on the d=5 surface code"))
    print()
    print(
        "GLADIATOR inserts fewer leakage-reduction circuits than ERASER by"
        " skipping syndrome patterns that ordinary Pauli noise explains."
    )


if __name__ == "__main__":
    main()
