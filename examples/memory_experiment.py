"""Decoded memory experiment: logical error rate with and without mitigation.

Runs memory-Z experiments on the distance-3 and distance-5 surface codes
under a leakage-heavy noise profile through the :class:`repro.Session`
facade: the whole (distance x policy) grid is one ``Session.sweep`` call
over a single base :class:`repro.ExperimentConfig`, executed on the shared
sweep engine (honouring ``REPRO_WORKERS`` / ``REPRO_CACHE``).

Run with::

    python examples/memory_experiment.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExperimentConfig, Session
from repro.io import format_table


def main() -> None:
    base = ExperimentConfig.from_dict(
        {
            "name": "memory_experiment",
            "code": {"name": "surface"},
            "noise": {"preset": "paper", "p": 1.5e-3, "leakage_ratio": 1.0},
            "decoder": {"name": "matching"},
            "execution": {"shots": 400, "rounds": 12, "seed": 11},
        }
    )
    rows = []
    for distance in (3, 5):
        # The paper runs 4d rounds per distance; rounds are part of the grid
        # point, so sweep the policies within each distance.
        config = base.override("code.distance", distance).override(
            "execution.rounds", 4 * distance
        )
        grid = Session.from_config(config).sweep(
            axes={"policy.name": ["no-lrc", "always-lrc", "gladiator+m"]}
        )
        for row in grid:
            low, high = row["ler_low"], row["ler_high"]
            rows.append(
                {
                    "distance": distance,
                    "policy": row["policy"],
                    "logical error rate": row["ler"],
                    "95% interval": f"[{low:.3f}, {high:.3f}]",
                    "LRCs/round": row["lrcs_per_round"],
                    "mean leakage population": row["mean_dlp"],
                }
            )
    print(format_table(rows, title="Memory-Z experiments under leakage (p=1.5e-3, lr=1)"))
    print()
    print(
        "Without any leakage reduction the leakage population builds up and the"
        " decoder's job gets harder; closed-loop speculation keeps the"
        " population near its injection floor at a tiny fraction of the LRCs"
        " an open-loop policy spends."
    )


if __name__ == "__main__":
    main()
