"""Decoded memory experiment: logical error rate with and without mitigation.

Runs memory-Z experiments on the distance-3 and distance-5 surface codes
under a leakage-heavy noise profile, decodes them with the matching decoder,
and reports how unmitigated leakage inflates the logical error rate while
speculative LRC insertion keeps it in check.

Run with::

    python examples/memory_experiment.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MemoryExperiment, make_policy, paper_noise, surface_code
from repro.io import format_table


def main() -> None:
    noise = paper_noise(p=1.5e-3, leakage_ratio=1.0)
    rows = []
    for distance in (3, 5):
        code = surface_code(distance)
        for policy_name in ("no-lrc", "always-lrc", "gladiator+m"):
            experiment = MemoryExperiment(
                code=code,
                noise=noise,
                policy=make_policy(policy_name),
                decoder_method="matching",
                seed=11,
            )
            result = experiment.run(shots=400, rounds=4 * distance)
            low, high = result.logical_error_rate_interval
            rows.append(
                {
                    "distance": distance,
                    "policy": result.policy_name,
                    "logical error rate": result.logical_error_rate,
                    "95% interval": f"[{low:.3f}, {high:.3f}]",
                    "LRCs/round": result.lrcs_per_round,
                    "mean leakage population": result.mean_dlp,
                }
            )
    print(format_table(rows, title="Memory-Z experiments under leakage (p=1.5e-3, lr=1)"))
    print()
    print(
        "Without any leakage reduction the leakage population builds up and the"
        " decoder's job gets harder; closed-loop speculation keeps the"
        " population near its injection floor at a tiny fraction of the LRCs"
        " an open-loop policy spends."
    )


if __name__ == "__main__":
    main()
