"""Adapting to the device: mobility estimation and recalibration.

Two workflows from the paper's adaptability story:

1. estimate the leakage-mobility regime of a device (Section 7.6) to decide
   whether open-loop staggered resets suffice or closed-loop speculation is
   needed, and
2. recalibrate GLADIATOR's graph model when the device drifts — only the
   edge weights change, the graph structure and the online datapath stay
   fixed.

Run with::

    python examples/mobility_and_calibration.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CalibrationData, paper_noise, surface_code
from repro.core import GladiatorPolicy, MobilityEstimator
from repro.io import format_table


def mobility_study() -> None:
    code = surface_code(5)
    rows = []
    for mobility in (0.01, 0.05, 0.09):
        noise = paper_noise().with_(leakage_mobility=mobility)
        estimate = MobilityEstimator(code, noise, seed=5).estimate(shots=200, rounds=40)
        rows.append(
            {
                "true mobility": mobility,
                "estimated co-flagging probability": estimate.conditional_probability,
                "classified regime": estimate.regime,
                "suggested strategy": (
                    "staggered open-loop resets"
                    if estimate.regime == "low"
                    else "closed-loop speculation (GLADIATOR)"
                ),
            }
        )
    print(format_table(rows, title="Leakage-mobility estimation"))


def recalibration_study() -> None:
    code = surface_code(5)
    noise = paper_noise()
    policy = GladiatorPolicy()
    policy.prepare(code, noise)
    bulk = next(q for q in range(code.num_data) if code.pattern_width(q) == 4)
    before = int(policy.flag_table(bulk).sum())

    # The device drifts: leakage becomes ten times more prevalent.
    drifted = CalibrationData.from_noise(noise).with_(leakage_rate=10 * noise.p_leak)
    policy.recalibrate(drifted)
    after = int(policy.flag_table(bulk).sum())

    print()
    print("Recalibration after a leakage-rate drift (bulk 4-bit patterns):")
    print(f"  flagged before drift : {before}/16")
    print(f"  flagged after drift  : {after}/16")
    print(
        "  -> the graph structure is untouched; re-weighting the edges makes"
        " speculation more aggressive because leakage is now more likely."
    )


def main() -> None:
    mobility_study()
    recalibration_study()


if __name__ == "__main__":
    main()
