"""Quickstart for decode-as-a-service: stream syndromes to a TCP server.

Spins up a :class:`repro.serve.ServerThread` (two decode shards, fused
sliding windows, cross-stream coalescing), records a handful of noisy
memory runs, streams them to the server as concurrent clients with
:func:`repro.serve.decode_records`, and prints the per-stream logical
error rates next to the server's live SLO snapshot — round latency
percentiles priced against the 1 µs hardware round budget.

Run with::

    python examples/serve_quickstart.py

The same server runs standalone via ``python -m repro serve``; query a
running instance with ``python -m repro serve --status``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.codes import surface_code
from repro.core import make_policy
from repro.io import format_table
from repro.noise import paper_noise
from repro.serve import ServerConfig, ServerThread, decode_records
from repro.sim import LeakageSimulator, SimulatorOptions

DISTANCE = 3
SHOTS = 40
ROUNDS = 12
CLIENTS = 6
NOISE = {"p": 2e-3, "leakage_ratio": 1.0}


def record_stream(seed: int):
    """One recorded memory run -> (detector_history, finals, flips)."""
    simulator = LeakageSimulator(
        code=surface_code(DISTANCE),
        noise=paper_noise(**NOISE),
        policy=make_policy("gladiator+m"),
        options=SimulatorOptions(record_detectors=True),
        seed=seed,
    )
    result = simulator.run(shots=SHOTS, rounds=ROUNDS)
    return (
        result.detector_history,
        result.final_detectors,
        result.observable_flips,
    )


def main() -> None:
    records = [record_stream(seed=100 + 13 * i) for i in range(CLIENTS)]

    config = ServerConfig(
        port=0,
        shards=2,
        workers_per_shard=2,
        window_rounds=4,
        fused=True,
        coalesce=True,
    )
    with ServerThread(config) as server:
        print(f"decode server listening on 127.0.0.1:{server.port}")
        results = decode_records(
            "127.0.0.1",
            server.port,
            records,
            code={"family": "surface", "distance": DISTANCE},
            noise=NOISE,
            tenant="quickstart",
        )
        status = server.status()

    rows = [
        {
            "stream": result.stream,
            "shots": result.predictions.size,
            "failures": result.failures,
            "logical error rate": result.logical_error_rate,
            "windows": result.summary["windows"],
        }
        for result in results
    ]
    print(format_table(rows, title="Decode-as-a-service on the d=3 surface code"))
    print()
    print(
        f"served {status['streams_done']} streams / {status['rounds']} rounds;"
        f" coalesce ratio {status['coalesce_ratio']:.2f}"
    )
    print(
        "round latency p50/p99 ="
        f" {status['round_latency_p50_ns'] / 1e3:.1f} /"
        f" {status['round_latency_p99_ns'] / 1e3:.1f} us"
        f" ({status['slo_p99']:.1f}x the {status['hardware_round_ns']:.0f} ns"
        " hardware round budget)"
    )
    print(
        "Coalescing merges windows from concurrent streams into single"
        " decoder calls without changing a single predicted bit."
    )


if __name__ == "__main__":
    main()
