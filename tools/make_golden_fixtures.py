"""Regenerate the golden regression fixtures under ``tests/fixtures/``.

Each fixture pins one small end-to-end pipeline: a recorded simulator run
(detector history, final readout, true observable flips), the per-shot
predictions and failure counts of both decoders on that record, and the full
``MemoryExperiment`` summary for the same configuration.  The tier-1 test
``tests/test_golden_fixtures.py`` replays all of it and compares bit for
bit, so any silent drift in the simulator's RNG consumption, the decoders or
the metrics shows up as a diff against these files.

Run from the repository root (only needed when an *intentional* behaviour
change invalidates the pinned numbers):

    PYTHONPATH=src python tools/make_golden_fixtures.py

``--only NAME`` regenerates a single scenario (e.g. one newly added to
``SCENARIOS``) and leaves every other fixture file byte-identical.

Scenarios may carry ``window_rounds`` / ``commit_rounds`` keys, in which
case the pinned ``MemoryExperiment`` summaries decode through the sliding
window path; the ``decoders`` section always pins the offline batch decode
of the recorded arrays, which is well-defined for every scenario.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api.registry import NOISE_PRESETS  # noqa: E402
from repro.core import make_policy  # noqa: E402
from repro.decoders import DetectorGraph, make_decoder  # noqa: E402
from repro.experiments import MemoryExperiment, make_code  # noqa: E402
from repro.sim import LeakageSimulator, SimulatorOptions  # noqa: E402

FIXTURES_DIR = ROOT / "tests" / "fixtures"

#: The pinned scenarios: small enough to replay in well under a second each,
#: noisy enough that decoding is non-trivial (failures > 0 at these sizes).
#: ``family`` and ``noise`` are registry names, so any registered code or
#: (rate-parameterised) noise preset can be pinned here.
SCENARIOS = [
    {
        "name": "surface_d3_eraser",
        "family": "surface",
        "distance": 3,
        "noise": "paper",
        "p": 2e-3,
        "leakage_ratio": 1.0,
        "policy": "eraser+m",
        "shots": 24,
        "rounds": 5,
        "seed": 11,
    },
    {
        "name": "color_d3_gladiator",
        "family": "color",
        "distance": 3,
        "noise": "paper",
        "p": 2e-3,
        "leakage_ratio": 1.0,
        "policy": "gladiator+m",
        "shots": 24,
        "rounds": 5,
        "seed": 29,
    },
    {
        "name": "toric_d3_eraser",
        "family": "toric",
        "distance": 3,
        "noise": "paper",
        "p": 2e-3,
        "leakage_ratio": 1.0,
        "policy": "eraser+m",
        "shots": 24,
        "rounds": 5,
        "seed": 17,
    },
    {
        "name": "surface_d3_drift",
        "family": "surface",
        "distance": 3,
        "noise": "drift",
        "p": 2e-3,
        "leakage_ratio": 1.0,
        "policy": "gladiator+m",
        "shots": 24,
        "rounds": 5,
        "seed": 41,
    },
    {
        "name": "surface_d3_bursts",
        "family": "surface",
        "distance": 3,
        "noise": "bursts",
        "p": 2e-3,
        "leakage_ratio": 1.0,
        "policy": "eraser+m",
        "shots": 24,
        "rounds": 5,
        "seed": 43,
    },
    {
        "name": "toric_d3_floods",
        "family": "toric",
        "distance": 3,
        "noise": "floods",
        "p": 2e-3,
        "leakage_ratio": 1.0,
        "policy": "gladiator+m",
        "shots": 24,
        "rounds": 5,
        "seed": 47,
    },
    {
        "name": "surface_d3_windowed",
        "family": "surface",
        "distance": 3,
        "noise": "paper",
        "p": 2e-3,
        "leakage_ratio": 1.0,
        "policy": "eraser+m",
        "shots": 24,
        "rounds": 6,
        "seed": 53,
        "window_rounds": 3,
        "commit_rounds": 1,
    },
]


def build_noise(scenario: dict):
    preset = NOISE_PRESETS.get(scenario["noise"]).obj
    return preset(p=scenario["p"], leakage_ratio=scenario["leakage_ratio"])


def make_fixture(scenario: dict) -> dict:
    code = make_code(scenario["family"], scenario["distance"])
    noise = build_noise(scenario)
    policy = make_policy(scenario["policy"])

    simulator = LeakageSimulator(
        code=code,
        noise=noise,
        policy=policy,
        options=SimulatorOptions(record_detectors=True),
        seed=scenario["seed"],
    )
    run = simulator.run(shots=scenario["shots"], rounds=scenario["rounds"])

    graph = DetectorGraph(
        code=code, rounds=scenario["rounds"], noise=noise, hyperedges="decompose"
    )
    decoders = {}
    for method in ("matching", "union_find"):
        predictions = make_decoder(graph, method).decode_batch(
            run.detector_history, run.final_detectors
        )
        decoders[method] = {
            "predictions": predictions.astype(int).tolist(),
            "failures": int((predictions ^ run.observable_flips).sum()),
        }

    summaries = {}
    for method in ("matching", "union_find"):
        result = MemoryExperiment(
            code=make_code(scenario["family"], scenario["distance"]),
            noise=noise,
            policy=make_policy(scenario["policy"]),
            decoder_method=method,
            seed=scenario["seed"],
            window_rounds=scenario.get("window_rounds"),
            commit_rounds=scenario.get("commit_rounds"),
        ).run(shots=scenario["shots"], rounds=scenario["rounds"])
        summaries[method] = result.summary()

    return {
        "scenario": scenario,
        "detector_history": run.detector_history.astype(int).tolist(),
        "final_detectors": run.final_detectors.astype(int).tolist(),
        "observable_flips": run.observable_flips.astype(int).tolist(),
        "decoders": decoders,
        "memory_summaries": summaries,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        metavar="NAME",
        help="regenerate just this scenario, leaving every other fixture untouched",
    )
    args = parser.parse_args(argv)
    scenarios = SCENARIOS
    if args.only is not None:
        scenarios = [s for s in SCENARIOS if s["name"] == args.only]
        if not scenarios:
            known = ", ".join(s["name"] for s in SCENARIOS)
            parser.error(f"unknown scenario {args.only!r} (known: {known})")
    FIXTURES_DIR.mkdir(parents=True, exist_ok=True)
    for scenario in scenarios:
        fixture = make_fixture(scenario)
        path = FIXTURES_DIR / f"golden_{scenario['name']}.json"
        path.write_text(json.dumps(fixture, indent=1, sort_keys=True))
        matching = fixture["decoders"]["matching"]["failures"]
        union_find = fixture["decoders"]["union_find"]["failures"]
        print(
            f"wrote {path.relative_to(ROOT)} "
            f"(failures: matching={matching}, union_find={union_find})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
