"""Profile the simulator hot path: cProfile plus a per-phase breakdown.

Runs one leakage-simulation workload twice: once under ``cProfile`` (where
is the Python/NumPy time going?) and once under a ``repro.obs`` tracer,
deriving the per-phase table from the ``sim.phase.*`` spans the simulator
emits (how do the QEC-round phases — noise channels, CNOT layers,
measurement, speculation, bookkeeping — share the wall-clock?).  This is
the harness the "Simulator performance" notes in ``docs/architecture.md``
were produced with.

Usage::

    PYTHONPATH=src python tools/profile_sim.py                 # default d=5 workload
    PYTHONPATH=src python tools/profile_sim.py -d 7 -s 50000   # bigger batch
    PYTHONPATH=src python tools/profile_sim.py --json          # machine-readable
    PYTHONPATH=src python tools/profile_sim.py --smoke         # CI sanity run

``--smoke`` runs a tiny configuration and asserts the harness end-to-end
(every phase shows up in the span-derived table), so CI keeps the profiler
from rotting without paying for a real profile.  ``--json`` emits the
breakdown as one JSON object on stdout (human tables move to stderr).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import make_policy  # noqa: E402
from repro.experiments import make_code  # noqa: E402
from repro.noise import paper_noise  # noqa: E402
from repro.obs.trace import Tracer, activate, deactivate  # noqa: E402
from repro.sim import LeakageSimulator, SimulatorOptions  # noqa: E402
from repro.sim.simulator import PHASE_NAMES  # noqa: E402


def build_simulator(args: argparse.Namespace) -> LeakageSimulator:
    """Construct the profiled workload (leakage-population configuration)."""
    return LeakageSimulator(
        code=make_code(args.family, args.distance),
        noise=paper_noise(p=args.p, leakage_ratio=args.leakage_ratio),
        policy=make_policy(args.policy),
        options=SimulatorOptions(
            leakage_sampling=True,
            record_detectors=args.record_detectors,
            rng_prefetch=args.prefetch,
        ),
        seed=args.seed,
    )


def phase_breakdown(
    args: argparse.Namespace, out=sys.stdout
) -> tuple[dict[str, int], int]:
    """Run once under a tracer; print and return (ns-per-phase, wall ns).

    The table is derived from the ``sim.phase.*`` spans the simulator emits,
    so the profiler exercises exactly the instrumentation a traced production
    run records — there is no separate private timing path to rot.
    """
    simulator = build_simulator(args)
    tracer = Tracer()
    activate(tracer)
    try:
        started = time.perf_counter_ns()
        simulator.run(shots=args.shots, rounds=args.rounds)
        wall = time.perf_counter_ns() - started
    finally:
        deactivate()
    totals = {name: 0.0 for name in PHASE_NAMES}
    prefix = "sim.phase."
    for event in tracer.events():
        name = event["name"]
        if name.startswith(prefix):
            # Span durations are microseconds; the table reports nanoseconds.
            totals[name[len(prefix):]] += event["dur"] * 1e3
    accumulator = {name: int(value) for name, value in totals.items()}
    total = sum(accumulator.values()) or 1
    print(
        f"\nPer-phase breakdown ({args.shots} shots x {args.rounds} rounds):",
        file=out,
    )
    print(f"  {'phase':<14}{'ms/round':>10}{'share':>9}", file=out)
    for name in PHASE_NAMES:
        nanoseconds = accumulator[name]
        print(
            f"  {name:<14}{nanoseconds / 1e6 / args.rounds:>10.3f}"
            f"{100.0 * nanoseconds / total:>8.1f}%",
            file=out,
        )
    print(
        f"  {'(wall clock)':<14}{wall / 1e6 / args.rounds:>10.3f}"
        f"   {wall / 1e9:.2f} s total",
        file=out,
    )
    return accumulator, wall


def profile(args: argparse.Namespace, out=sys.stdout) -> None:
    """Run once under cProfile and print the hottest functions."""
    simulator = build_simulator(args)
    profiler = cProfile.Profile()
    profiler.enable()
    simulator.run(shots=args.shots, rounds=args.rounds)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("tottime").print_stats(args.top)
    print(stream.getvalue(), file=out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-f", "--family", default="surface")
    parser.add_argument("-d", "--distance", type=int, default=5)
    parser.add_argument("-s", "--shots", type=int, default=20_000)
    parser.add_argument("-r", "--rounds", type=int, default=100)
    parser.add_argument("--policy", default="gladiator+m")
    parser.add_argument("--p", type=float, default=1e-3)
    parser.add_argument("--leakage-ratio", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=202)
    parser.add_argument("--record-detectors", action="store_true")
    parser.add_argument(
        "--prefetch", choices=("auto", "on", "off"), default="auto",
        help="draw-generation strategy (see SimulatorOptions.rng_prefetch)",
    )
    parser.add_argument("--top", type=int, default=15, help="cProfile rows to print")
    parser.add_argument(
        "--no-cprofile", action="store_true",
        help="skip the cProfile pass (phase breakdown only)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny self-checking run for CI (overrides the workload knobs)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the phase breakdown as JSON on stdout (tables go to stderr)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.distance, args.shots, args.rounds, args.top = 3, 200, 6, 5
    human_out = sys.stderr if args.json else sys.stdout
    if not args.no_cprofile:
        profile(args, out=human_out)
    accumulator, wall = phase_breakdown(args, out=human_out)

    if args.json:
        payload = {
            "workload": {
                "family": args.family,
                "distance": args.distance,
                "shots": args.shots,
                "rounds": args.rounds,
                "policy": args.policy,
                "p": args.p,
                "leakage_ratio": args.leakage_ratio,
                "seed": args.seed,
            },
            "phases_ns": accumulator,
            "wall_ns": wall,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))

    if args.smoke:
        assert set(accumulator) == set(PHASE_NAMES)
        assert all(value >= 0 for value in accumulator.values())
        assert sum(accumulator.values()) > 0
        print("smoke ok: phase accounting is live", file=human_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
