#!/usr/bin/env python
"""Emit the ExperimentConfig JSON schema (CI uploads it as an artifact).

The schema's component-name fields are ``enum`` lists read from the live
registries, so any PR that adds, renames or removes a registered component
shows up as a plain diff of the schema artifact — config drift is
reviewable instead of silent.

Usage::

    PYTHONPATH=src python tools/dump_config_schema.py            # stdout
    PYTHONPATH=src python tools/dump_config_schema.py --out schema.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import config_schema  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write here instead of stdout")
    args = parser.parse_args(argv)

    text = json.dumps(config_schema(), indent=2, sort_keys=False) + "\n"
    if args.out is None:
        sys.stdout.write(text)
    else:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
