#!/usr/bin/env python
"""Verify that relative Markdown links in the docs resolve to real files.

Scans the given Markdown files (default: README.md and everything under
docs/) for ``[text](target)`` links, skips external URLs and pure anchors,
and fails with a non-zero exit code if any relative target does not exist.
Used by the CI docs job; run locally with::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def check_file(path: Path) -> list[str]:
    """Return one error string per broken relative link in ``path``."""
    errors = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        for target in LINK_PATTERN.findall(line):
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{number}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [root / "README.md", *sorted((root / "docs").glob("**/*.md"))]
    errors: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        checked += 1
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
